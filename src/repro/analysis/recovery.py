"""Recovery metrics: how well mined cubes match known ground truth.

The triclustering literature evaluates algorithms on synthetic data by
planting blocks and scoring how well the output recovers them (e.g.
the match scores of Prelić et al. / Zhao & Zaki's TRICLUSTER).  This
module implements those scores over :class:`Cube` ground truth — the
natural companion of :func:`repro.datasets.planted_tensor` and the
noise injectors in :mod:`repro.datasets.perturb`:

* :func:`cube_jaccard` — cell-level Jaccard similarity of two cubes;
* :func:`relevance`    — avg over *planted* blocks of their best match
  in the result ("are the true patterns found?"  recall-like);
* :func:`specificity`  — avg over *mined* cubes of their best match in
  the ground truth ("is what was found real?"  precision-like);
* :func:`recovery_report` — both plus per-block detail.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.bitset import bit_count
from ..core.cube import Cube
from ..core.result import MiningResult

__all__ = [
    "cube_jaccard",
    "relevance",
    "specificity",
    "BlockMatch",
    "RecoveryReport",
    "recovery_report",
]


def cube_jaccard(a: Cube, b: Cube) -> float:
    """Cell-level Jaccard similarity |A ∩ B| / |A ∪ B| of two cubes.

    The intersection of two axis-aligned blocks is the block of the
    axis-wise intersections, so no cell sets are materialized.
    """
    inter = (
        bit_count(a.heights & b.heights)
        * bit_count(a.rows & b.rows)
        * bit_count(a.columns & b.columns)
    )
    union = a.volume + b.volume - inter
    if union == 0:
        return 0.0
    return inter / union


def _best_matches(
    queries: Sequence[Cube], pool: Sequence[Cube]
) -> list[tuple[Cube | None, float]]:
    out: list[tuple[Cube | None, float]] = []
    for query in queries:
        best_cube: Cube | None = None
        best_score = 0.0
        for candidate in pool:
            score = cube_jaccard(query, candidate)
            if score > best_score:
                best_cube, best_score = candidate, score
        out.append((best_cube, best_score))
    return out


def relevance(truth: Sequence[Cube], result: MiningResult | Sequence[Cube]) -> float:
    """Average best-match Jaccard of each ground-truth block (recall-like).

    1.0 means every planted block is recovered exactly; 0.0 means no
    mined cube overlaps any planted block.
    """
    truth = list(truth)
    if not truth:
        raise ValueError("relevance needs at least one ground-truth block")
    pool = list(result)
    matches = _best_matches(truth, pool)
    return sum(score for _cube, score in matches) / len(truth)


def specificity(truth: Sequence[Cube], result: MiningResult | Sequence[Cube]) -> float:
    """Average best-match Jaccard of each mined cube (precision-like).

    1.0 means everything mined corresponds exactly to some planted
    block; low values mean the result is dominated by spurious cubes.
    An empty result scores 0.0.
    """
    truth = list(truth)
    if not truth:
        raise ValueError("specificity needs at least one ground-truth block")
    pool = list(result)
    if not pool:
        return 0.0
    matches = _best_matches(pool, truth)
    return sum(score for _cube, score in matches) / len(pool)


@dataclass(frozen=True, slots=True)
class BlockMatch:
    """The best mined match for one ground-truth block."""

    block: Cube
    matched: Cube | None
    jaccard: float


@dataclass
class RecoveryReport:
    """Full recovery evaluation of one run against ground truth."""

    relevance: float
    specificity: float
    matches: list[BlockMatch]

    @property
    def f1(self) -> float:
        """Harmonic mean of relevance and specificity."""
        total = self.relevance + self.specificity
        if total == 0:
            return 0.0
        return 2 * self.relevance * self.specificity / total

    def summary(self) -> str:
        return (
            f"recovery: relevance={self.relevance:.3f}, "
            f"specificity={self.specificity:.3f}, f1={self.f1:.3f}"
        )


def recovery_report(
    truth: Sequence[Cube], result: MiningResult | Sequence[Cube]
) -> RecoveryReport:
    """Score a result against ground truth with per-block detail."""
    truth = list(truth)
    if not truth:
        raise ValueError("recovery needs at least one ground-truth block")
    pool = list(result)
    matches = [
        BlockMatch(block=block, matched=cube, jaccard=score)
        for block, (cube, score) in zip(truth, _best_matches(truth, pool))
    ]
    return RecoveryReport(
        relevance=sum(m.jaccard for m in matches) / len(truth),
        specificity=specificity(truth, pool),
        matches=matches,
    )
