"""One-shot text mining reports.

:func:`mining_report` assembles everything an analyst looks at after a
run into one plain-text document: the dataset profile, the run summary,
the result-shape statistics, the top cubes by volume, a greedy-cover
digest, and the strongest association rules.  The CLI's ``report``
subcommand and the examples print these; they are also handy to drop
into lab notebooks.
"""

from __future__ import annotations

from ..core.dataset import Dataset3D
from ..core.result import MiningResult
from .coverage import greedy_cover
from .rules import derive_rules
from .stats import dataset_stats, result_stats

__all__ = ["mining_report"]

_RULE_WIDTH = 72


def mining_report(
    dataset: Dataset3D,
    result: MiningResult,
    *,
    top_cubes: int = 10,
    cover_cubes: int = 5,
    max_rules: int = 10,
    min_confidence: float = 0.8,
) -> str:
    """Render a complete text report for one mining run."""
    if top_cubes < 0 or cover_cubes < 0 or max_rules < 0:
        raise ValueError("report section sizes must be >= 0")
    sections: list[str] = []

    def heading(title: str) -> None:
        sections.append("=" * _RULE_WIDTH)
        sections.append(title)
        sections.append("=" * _RULE_WIDTH)

    heading("Dataset")
    sections.append(dataset_stats(dataset).format())

    heading("Run")
    sections.append(result.summary())
    if result.thresholds is not None:
        sections.append(f"thresholds   : {result.thresholds}")
    interesting = {
        k: v
        for k, v in result.stats.items()
        if isinstance(v, (int, float)) and v
    }
    if interesting:
        sections.append(
            "stats        : "
            + ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
        )

    heading("Result shape")
    sections.append(result_stats(dataset, result).format())

    if len(result) and top_cubes:
        heading(f"Top {min(top_cubes, len(result))} cubes by volume")
        ranked = sorted(result, key=lambda cube: -cube.volume)
        for cube in ranked[:top_cubes]:
            sections.append(f"  [{cube.volume:>5} cells] {cube.format(dataset)}")

    if len(result) and cover_cubes:
        heading(f"Greedy cover (top {cover_cubes})")
        for step in greedy_cover(dataset, result, max_cubes=cover_cubes):
            sections.append(
                f"  +{step.new_cells:>5} cells -> {step.cumulative_fraction:6.1%}  "
                f"{step.cube.format(dataset)}"
            )

    if len(result) and max_rules:
        rules = derive_rules(
            dataset, result, min_confidence=min_confidence, max_antecedent=1
        )
        heading(
            f"Association rules (confidence >= {min_confidence:.2f}, "
            f"{len(rules)} total)"
        )
        if rules:
            for rule in rules[:max_rules]:
                sections.append(f"  {rule.format(dataset)}")
        else:
            sections.append("  (none at this confidence)")

    return "\n".join(sections)
