"""Descriptive statistics over datasets and mining results.

Small, dependency-light helpers used by the CLI, the examples and the
benchmark harness to summarize what was mined: per-slice density and
zero counts (the quantities behind the zero-decreasing ordering
heuristic), and distributional summaries of a result's cube sizes and
cell coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitset import iter_bits
from ..core.dataset import Dataset3D
from ..core.result import MiningResult

__all__ = ["DatasetStats", "ResultStats", "dataset_stats", "result_stats"]


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Shape/density profile of a 3D dataset."""

    shape: tuple[int, int, int]
    density: float
    n_ones: int
    zeros_per_height: tuple[int, ...]
    n_cutters: int

    def format(self) -> str:
        l, n, m = self.shape
        zero_text = ", ".join(str(z) for z in self.zeros_per_height)
        return (
            f"shape      : {l} x {n} x {m}\n"
            f"density    : {self.density:.4f} ({self.n_ones} ones)\n"
            f"cutters    : {self.n_cutters}\n"
            f"zeros/slice: [{zero_text}]"
        )


def dataset_stats(dataset: Dataset3D) -> DatasetStats:
    """Profile a dataset (density, zeros per slice, cutter count)."""
    zeros = tuple(dataset.zeros_in_height(k) for k in range(dataset.n_heights))
    n_cutters = sum(
        1
        for k in range(dataset.n_heights)
        for i in range(dataset.n_rows)
        if dataset.zeros_mask(k, i)
    )
    return DatasetStats(
        shape=dataset.shape,
        density=dataset.density,
        n_ones=dataset.count_ones(),
        zeros_per_height=zeros,
        n_cutters=n_cutters,
    )


@dataclass(frozen=True, slots=True)
class ResultStats:
    """Distributional summary of a mining result."""

    n_cubes: int
    mean_h: float
    mean_r: float
    mean_c: float
    max_volume: int
    covered_cells: int
    coverage: float

    def format(self) -> str:
        return (
            f"cubes        : {self.n_cubes}\n"
            f"mean supports: H={self.mean_h:.2f}, R={self.mean_r:.2f}, "
            f"C={self.mean_c:.2f}\n"
            f"max volume   : {self.max_volume}\n"
            f"coverage     : {self.covered_cells} cells ({self.coverage:.2%})"
        )


def result_stats(dataset: Dataset3D, result: MiningResult) -> ResultStats:
    """Summarize cube sizes and the cells the result covers.

    Coverage is measured against the dataset's one-cells: the fraction
    of ones that belong to at least one FCC.
    """
    if len(result) == 0:
        return ResultStats(0, 0.0, 0.0, 0.0, 0, 0, 0.0)
    covered = np.zeros(dataset.shape, dtype=bool)
    h_sizes, r_sizes, c_sizes = [], [], []
    max_volume = 0
    for cube in result:
        h_sizes.append(cube.h_support)
        r_sizes.append(cube.r_support)
        c_sizes.append(cube.c_support)
        max_volume = max(max_volume, cube.volume)
        hs = list(iter_bits(cube.heights))
        rs = list(iter_bits(cube.rows))
        cs = list(iter_bits(cube.columns))
        covered[np.ix_(hs, rs, cs)] = True
    n_ones = dataset.count_ones()
    covered_ones = int((covered & dataset.data).sum())
    return ResultStats(
        n_cubes=len(result),
        mean_h=float(np.mean(h_sizes)),
        mean_r=float(np.mean(r_sizes)),
        mean_c=float(np.mean(c_sizes)),
        max_volume=max_volume,
        covered_cells=covered_ones,
        coverage=covered_ones / n_ones if n_ones else 0.0,
    )
