"""3D association rules from frequent closed cubes.

The paper's conclusion names "3D association rule analysis based on
frequent closed cubes" as future work; this module builds that layer.
The 2D theory lifts naturally: a closed itemset yields rules between
column subsets, scoped by the supporting rows.  In 3D, an FCC
``(H', R', C')`` yields rules between *column* subsets scoped by the
height context:

    C1 => C2  within heights H'

* **support** — the fraction of (height, row) pairs of the whole
  dataset that contain ``C1 ∪ C2`` with ``H'`` intact, i.e.
  ``|H'| * |R'| / (l * n)``;
* **confidence** — among rows containing ``C1`` across every height of
  ``H'``, the fraction that also contain ``C2`` across ``H'``:
  ``|R(H' x (C1 ∪ C2))| / |R(H' x C1)|``.

Because the FCC is closed, the consequent of a full-split rule is
exactly the extra columns its antecedent implies in that height
context — the same information-preserving property closed itemsets
give in 2D.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..core.bitset import bit_count, indices, mask_of
from ..core.closure import row_support
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.result import MiningResult

__all__ = ["Rule3D", "derive_rules"]


@dataclass(frozen=True, slots=True)
class Rule3D:
    """An association rule scoped to a height context."""

    heights: int
    antecedent: int
    consequent: int
    support: float
    confidence: float

    def format(self, dataset: Dataset3D | None = None) -> str:
        def cols(mask: int) -> str:
            if dataset is not None:
                return "".join(dataset.column_labels[j] for j in indices(mask))
            return "".join(f"c{j + 1}" for j in indices(mask))

        def heights_text() -> str:
            if dataset is not None:
                return "".join(dataset.height_labels[k] for k in indices(self.heights))
            return "".join(f"h{k + 1}" for k in indices(self.heights))

        return (
            f"{cols(self.antecedent)} => {cols(self.consequent)} "
            f"[heights {heights_text()}] "
            f"(support={self.support:.3f}, confidence={self.confidence:.3f})"
        )

    def __str__(self) -> str:
        return self.format()


def derive_rules(
    dataset: Dataset3D,
    result: MiningResult,
    *,
    min_confidence: float = 0.5,
    max_antecedent: int = 2,
    max_rules: int = 10_000,
) -> list[Rule3D]:
    """Derive height-scoped column association rules from mined FCCs.

    For each FCC and each antecedent ``C1 ⊂ C'`` of size at most
    ``max_antecedent``, the rule ``C1 => C' \\ C1`` is emitted when its
    confidence reaches ``min_confidence``.  Rules are deduplicated on
    ``(heights, antecedent)`` keeping the largest consequent, so each
    (context, antecedent) pair maps to the closure's full implication.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
    if max_antecedent < 1:
        raise ValueError(f"max_antecedent must be >= 1, got {max_antecedent}")
    l, n, _m = dataset.shape
    total_pairs = l * n
    best: dict[tuple[int, int], Rule3D] = {}
    for cube in result:
        columns = cube.column_indices()
        if len(columns) < 2:
            continue
        base_support = (cube.h_support * cube.r_support) / total_pairs
        for size in range(1, min(max_antecedent, len(columns) - 1) + 1):
            for antecedent_cols in combinations(columns, size):
                antecedent = mask_of(antecedent_cols)
                consequent = cube.columns & ~antecedent
                antecedent_rows = row_support(dataset, cube.heights, antecedent)
                denominator = bit_count(antecedent_rows)
                if denominator == 0:
                    continue
                confidence = cube.r_support / denominator
                if confidence < min_confidence:
                    continue
                key = (cube.heights, antecedent)
                rule = Rule3D(
                    heights=cube.heights,
                    antecedent=antecedent,
                    consequent=consequent,
                    support=base_support,
                    confidence=confidence,
                )
                existing = best.get(key)
                if existing is None or bit_count(consequent) > bit_count(
                    existing.consequent
                ):
                    best[key] = rule
                if len(best) > max_rules:
                    raise ValueError(
                        f"more than {max_rules} rules; raise min_confidence or "
                        "lower max_antecedent"
                    )
    return sorted(
        best.values(),
        key=lambda rule: (-rule.confidence, -rule.support, rule.heights, rule.antecedent),
    )


def cube_implication(dataset: Dataset3D, cube: Cube, antecedent: int) -> Rule3D:
    """The single rule ``antecedent => rest-of-cube-columns`` for one FCC.

    A convenience for interactive exploration; raises when the
    antecedent is not a proper subset of the cube's columns.
    """
    if antecedent == 0 or antecedent & ~cube.columns or antecedent == cube.columns:
        raise ValueError("antecedent must be a non-empty proper subset of the columns")
    l, n, _m = dataset.shape
    antecedent_rows = row_support(dataset, cube.heights, antecedent)
    denominator = bit_count(antecedent_rows)
    confidence = cube.r_support / denominator if denominator else 0.0
    return Rule3D(
        heights=cube.heights,
        antecedent=antecedent,
        consequent=cube.columns & ~antecedent,
        support=(cube.h_support * cube.r_support) / (l * n),
        confidence=confidence,
    )
