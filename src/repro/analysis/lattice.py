"""The containment lattice of mined FCCs.

Closed cubes, ordered by per-axis containment, form a partial order
(in FCA terms: the tri-concept analogue of the concept lattice's
order).  This module materializes it as a networkx DAG whose edges are
the Hasse cover relation, plus the queries an analyst wants:

* which cubes are maximal / minimal,
* the ancestors (containers) and descendants (sub-cubes) of a cube,
* the chains (nested towers of patterns),
* the lattice height and an antichain decomposition.

Note the direction: an edge ``a -> b`` means ``a`` strictly contains
``b`` on every axis (``a`` is the more general, bigger block).
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from ..core.cube import Cube
from ..core.result import MiningResult

__all__ = ["build_containment_dag", "maximal_cubes", "minimal_cubes", "CubeLattice"]


def build_containment_dag(cubes: Iterable[Cube]) -> nx.DiGraph:
    """Build the Hasse diagram of cube containment.

    Quadratic in the cube count, then transitively reduced; intended
    for result sets of up to a few thousand cubes.
    """
    graph = nx.DiGraph()
    cube_list = list(dict.fromkeys(cubes))
    graph.add_nodes_from(cube_list)
    for a in cube_list:
        for b in cube_list:
            if a is not b and a != b and a.contains(b):
                graph.add_edge(a, b)
    return nx.transitive_reduction(graph) if graph.number_of_edges() else graph


def maximal_cubes(cubes: Iterable[Cube]) -> list[Cube]:
    """Cubes contained in no other cube of the collection."""
    cube_list = list(dict.fromkeys(cubes))
    return [
        a
        for a in cube_list
        if not any(b != a and b.contains(a) for b in cube_list)
    ]


def minimal_cubes(cubes: Iterable[Cube]) -> list[Cube]:
    """Cubes that contain no other cube of the collection."""
    cube_list = list(dict.fromkeys(cubes))
    return [
        a
        for a in cube_list
        if not any(b != a and a.contains(b) for b in cube_list)
    ]


class CubeLattice:
    """Query wrapper around the containment DAG of a mining result.

    Note: *frequent closed* cubes of one run are pairwise incomparable
    (closure makes each maximal), so a lattice over a single result is
    edgeless.  The structure becomes interesting across runs — e.g.
    the union of results at several thresholds, where tighter-threshold
    cubes nest inside looser ones.
    """

    def __init__(self, cubes: Iterable[Cube] | MiningResult) -> None:
        self._cubes = list(cubes)
        self._dag = build_containment_dag(self._cubes)

    @property
    def dag(self) -> nx.DiGraph:
        return self._dag

    def __len__(self) -> int:
        return self._dag.number_of_nodes()

    def maximal(self) -> list[Cube]:
        """Roots: cubes with no container in the collection."""
        return [c for c in self._dag.nodes if self._dag.in_degree(c) == 0]

    def minimal(self) -> list[Cube]:
        """Leaves: cubes containing no other cube of the collection."""
        return [c for c in self._dag.nodes if self._dag.out_degree(c) == 0]

    def containers_of(self, cube: Cube) -> list[Cube]:
        """Every cube of the collection strictly containing ``cube``."""
        if cube not in self._dag:
            raise KeyError(f"{cube!r} is not in the lattice")
        return list(nx.ancestors(self._dag, cube))

    def contained_in(self, cube: Cube) -> list[Cube]:
        """Every cube of the collection strictly inside ``cube``."""
        if cube not in self._dag:
            raise KeyError(f"{cube!r} is not in the lattice")
        return list(nx.descendants(self._dag, cube))

    def height(self) -> int:
        """Length (in nodes) of the longest containment chain."""
        if len(self._dag) == 0:
            return 0
        return int(nx.dag_longest_path_length(self._dag)) + 1

    def longest_chain(self) -> list[Cube]:
        """One longest nested tower, outermost first."""
        if len(self._dag) == 0:
            return []
        return list(nx.dag_longest_path(self._dag))

    def antichain_levels(self) -> list[list[Cube]]:
        """Partition into levels of pairwise-incomparable cubes."""
        if len(self._dag) == 0:
            return []
        return [list(level) for level in nx.topological_generations(self._dag)]
