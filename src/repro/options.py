"""Typed per-algorithm option dataclasses for :func:`repro.api.mine`.

Instead of loose ``**options`` keywords (still accepted, but
deprecated), callers pass one frozen dataclass matching the selected
algorithm::

    from repro import mine, CubeMinerOptions, HeightOrder

    result = mine(
        dataset, thresholds,
        algorithm="cubeminer",
        options=CubeMinerOptions(order=HeightOrder.ORIGINAL),
    )

Each class knows which algorithms it configures (``algorithms``) and
renders itself into the keyword arguments of the target mining function
with :meth:`to_kwargs`.  Passing an options object to an algorithm it
does not configure raises :class:`TypeError` — mismatches fail loudly
instead of silently ignoring knobs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from enum import Enum
from typing import ClassVar, Union

from .cubeminer.cutter import HeightOrder

__all__ = [
    "CubeMinerOptions",
    "RSMOptions",
    "ParallelOptions",
    "ReferenceOptions",
    "AlgorithmOptions",
    "options_class_for",
    "options_from_dict",
    "options_to_dict",
]


class _OptionsBase:
    """Shared validation: an options object names its algorithms."""

    #: Algorithm names this options class configures.
    algorithms: ClassVar[tuple[str, ...]] = ()

    def _check(self, algorithm: str) -> None:
        if algorithm not in self.algorithms:
            raise TypeError(
                f"{type(self).__name__} configures {self.algorithms}, "
                f"not algorithm {algorithm!r}"
            )


@dataclass(frozen=True)
class CubeMinerOptions(_OptionsBase):
    """Options for the sequential CubeMiner (Section 5)."""

    algorithms: ClassVar[tuple[str, ...]] = ("cubeminer",)

    #: Height-slice ordering heuristic for the cutter list.
    order: HeightOrder = HeightOrder.ZERO_DECREASING
    #: Closure-memoization bound: ``None`` keeps the default cache, ``0``
    #: disables memoization, a positive int caps the cache at that many
    #: entries (see :class:`repro.core.closure.ClosureCache`).
    closure_cache_size: int | None = None

    def to_kwargs(self, algorithm: str = "cubeminer") -> dict:
        self._check(algorithm)
        kwargs: dict = {"order": self.order}
        if self.closure_cache_size is not None:
            kwargs["closure_cache"] = self.closure_cache_size
        return kwargs


@dataclass(frozen=True)
class RSMOptions(_OptionsBase):
    """Options for the sequential RSM framework (Section 4)."""

    algorithms: ClassVar[tuple[str, ...]] = ("rsm",)

    #: Dimension to enumerate: ``"height"``/``"row"``/``"column"``, an
    #: axis index, or ``"auto"`` for the smallest dimension.
    base_axis: int | str = "height"
    #: Registry name of the 2D closed-pattern miner for phase 2.
    fcp_miner: str = "dminer"

    def to_kwargs(self, algorithm: str = "rsm") -> dict:
        self._check(algorithm)
        return {"base_axis": self.base_axis, "fcp_miner": self.fcp_miner}


@dataclass(frozen=True)
class ParallelOptions(_OptionsBase):
    """Options for both parallel variants (Section 6).

    Carries the union of both algorithms' knobs; :meth:`to_kwargs`
    selects the subset the chosen variant understands (``order`` /
    ``min_tasks`` are CubeMiner-only, ``base_axis`` / ``fcp_miner`` are
    RSM-only).
    """

    algorithms: ClassVar[tuple[str, ...]] = ("parallel-cubeminer", "parallel-rsm")

    #: Worker process count (1 falls back to inline execution).
    n_workers: int = 2
    #: Task chunks handed to each worker (load-balancing granularity).
    chunks_per_worker: int = 4
    #: Partition the enumerated dimension's task space into this many
    #: independently minable shards (results merge with closure
    #: re-validation at the shard boundary).
    shards: int = 1
    #: Dimension to shard along: must match the enumerated base
    #: dimension for parallel-rsm; parallel-cubeminer only accepts
    #: ``"auto"`` (its frontier has no named axis).
    shard_dim: int | str = "auto"
    #: Dataset transport: ``None`` auto-selects shared memory for pooled
    #: runs, ``True`` forces it, ``False`` keeps the pickled copy path.
    use_shm: bool | None = None
    #: parallel-cubeminer: cutter ordering heuristic.
    order: HeightOrder = HeightOrder.ZERO_DECREASING
    #: parallel-cubeminer: frontier size floor for task expansion
    #: (``None`` = ``8 * n_workers``).
    min_tasks: int | None = None
    #: parallel-rsm: base dimension to enumerate.
    base_axis: int | str = "auto"
    #: parallel-rsm: 2D miner name for phase 2.
    fcp_miner: str = "dminer"
    #: Retry budget per task chunk beyond the first attempt.
    retries: int = 2
    #: Per-chunk wall-clock timeout in seconds (``None`` = none); a
    #: chunk past it is treated as hung and the pool is re-spawned.
    task_timeout: float | None = None
    #: Base delay (seconds) of the exponential retry backoff.
    backoff: float = 0.1
    #: Path of the chunk-level checkpoint journal (``None`` = off).
    checkpoint_path: str | None = None
    #: Resume from ``checkpoint_path`` instead of truncating it.
    resume: bool = False

    def to_kwargs(self, algorithm: str = "parallel-cubeminer") -> dict:
        self._check(algorithm)
        kwargs = {
            "n_workers": self.n_workers,
            "chunks_per_worker": self.chunks_per_worker,
            "shards": self.shards,
            "shard_dim": self.shard_dim,
            "use_shm": self.use_shm,
            "retries": self.retries,
            "task_timeout": self.task_timeout,
            "backoff": self.backoff,
            "checkpoint_path": self.checkpoint_path,
            "resume": self.resume,
        }
        if algorithm == "parallel-cubeminer":
            kwargs["order"] = self.order
            kwargs["min_tasks"] = self.min_tasks
        else:
            kwargs["base_axis"] = self.base_axis
            kwargs["fcp_miner"] = self.fcp_miner
        return kwargs


@dataclass(frozen=True)
class ReferenceOptions(_OptionsBase):
    """Options for the brute-force oracle (it has no knobs)."""

    algorithms: ClassVar[tuple[str, ...]] = ("reference",)

    def to_kwargs(self, algorithm: str = "reference") -> dict:
        self._check(algorithm)
        return {}


#: Any typed options object accepted by :func:`repro.api.mine`.
AlgorithmOptions = Union[
    CubeMinerOptions, RSMOptions, ParallelOptions, ReferenceOptions
]

_OPTION_CLASSES: tuple[type, ...] = (
    CubeMinerOptions,
    RSMOptions,
    ParallelOptions,
    ReferenceOptions,
)


def options_class_for(algorithm: str) -> type:
    """The typed options class configuring ``algorithm``.

    Covers the built-in option classes only; third-party algorithms
    registered through :func:`repro.api.register_algorithm` carry their
    own ``options_type`` on the registry spec.
    """
    for cls in _OPTION_CLASSES:
        if algorithm in cls.algorithms:
            return cls
    raise ValueError(f"no built-in options class configures {algorithm!r}")


def options_from_dict(algorithm: str, payload: dict | None) -> AlgorithmOptions:
    """Build the typed options object for ``algorithm`` from a JSON dict.

    This is the wire-to-dataclass step of the service API: a request's
    ``options`` object (plain JSON — enum fields as their string values)
    becomes the same frozen dataclass a library caller would construct.
    Unknown keys raise :class:`ValueError` so typos fail loudly.
    """
    cls = options_class_for(algorithm)
    payload = dict(payload or {})
    known = {f.name: f for f in fields(cls)}
    unknown = set(payload) - set(known)
    if unknown:
        raise ValueError(
            f"unknown option key(s) {sorted(unknown)} for {cls.__name__} "
            f"(algorithm {algorithm!r}); valid keys: {sorted(known)}"
        )
    kwargs = {}
    for name, value in payload.items():
        if name == "order" and not isinstance(value, HeightOrder):
            value = HeightOrder(value)
        kwargs[name] = value
    return cls(**kwargs)


def options_to_dict(options: AlgorithmOptions) -> dict:
    """Render a typed options object as a JSON-ready dict.

    The inverse of :func:`options_from_dict`: enum fields serialize to
    their string values, everything else is already JSON-native.
    """
    payload = asdict(options)  # type: ignore[call-overload]
    return {
        name: value.value if isinstance(value, Enum) else value
        for name, value in payload.items()
    }
