"""Interchange formats for datasets and mining results.

Datasets travel in three forms: the dense text of
:meth:`Dataset3D.to_text`, compressed NPZ
(:meth:`Dataset3D.save_npz`), and — here — a *sparse triples* text
format listing only the one-cells, the natural shape for transaction
logs and adjacency data::

    # any comment lines
    3 4 5          <- l n m header
    0 0 0          <- one-cell coordinates: height row column
    0 0 1
    ...

Results serialize to JSON (lossless, with labels and provenance) and
CSV (one cube per line, for spreadsheets/pandas).
"""

from __future__ import annotations

import csv
import hashlib
import io as _io
import json
from pathlib import Path

from .core.constraints import Thresholds
from .core.cube import Cube
from .core.dataset import Dataset3D
from .core.result import MiningResult, MiningStats

__all__ = [
    "DatasetFormatError",
    "save_triples",
    "load_triples",
    "load_event_csv",
    "dataset_fingerprint",
    "dataset_to_payload",
    "dataset_from_payload",
    "result_to_json",
    "result_from_json",
    "result_to_csv",
    "raw_cubes_to_payload",
    "raw_cubes_from_payload",
]


class DatasetFormatError(ValueError):
    """A dataset file is malformed (bad header, token, range, duplicate).

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    handlers keep working; carries the offending ``path`` and 1-based
    ``line_no`` when known so tools (and the CLI, which maps this to
    exit code 65) can point at the exact input line.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | Path | None = None,
        line_no: int | None = None,
    ) -> None:
        prefix = ""
        if path is not None:
            prefix += f"{path}: "
        if line_no is not None:
            prefix += f"line {line_no}: "
        super().__init__(prefix + message)
        self.path = str(path) if path is not None else None
        self.line_no = line_no


# ----------------------------------------------------------------------
# Sparse triples
# ----------------------------------------------------------------------
def save_triples(dataset: Dataset3D, path: str | Path) -> None:
    """Write the dataset's one-cells as sparse triples text."""
    import numpy as np

    l, n, m = dataset.shape
    with open(Path(path), "w") as handle:
        handle.write(f"{l} {n} {m}\n")
        for k, i, j in np.argwhere(dataset.data):
            handle.write(f"{k} {i} {j}\n")


def load_triples(path: str | Path, **label_kwargs) -> Dataset3D:
    """Read a sparse-triples file back into a dataset.

    Blank lines and ``#`` comments are skipped.  Every malformation —
    truncated or non-numeric header, wrong token counts, non-integer
    tokens, out-of-range coordinates, duplicate cells — raises a single
    typed :class:`DatasetFormatError` carrying the offending line
    number, so callers never see a bare ``ValueError``/``IndexError``
    from parsing internals.
    """
    path = Path(path)
    header: tuple[int, int, int] | None = None
    cells: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                what = "header" if header is None else "cell"
                raise DatasetFormatError(
                    f"expected 3 integers for the {what}, got {line!r}",
                    path=path,
                    line_no=line_no,
                )
            try:
                k, i, j = (int(p) for p in parts)
            except ValueError:
                raise DatasetFormatError(
                    f"expected 3 integers, got {line!r}",
                    path=path,
                    line_no=line_no,
                ) from None
            if header is None:
                if min(k, i, j) < 0:
                    raise DatasetFormatError(
                        f"header sizes must be >= 0, got {k} {i} {j}",
                        path=path,
                        line_no=line_no,
                    )
                header = (k, i, j)
                continue
            l, n, m = header
            if not (0 <= k < l and 0 <= i < n and 0 <= j < m):
                raise DatasetFormatError(
                    f"cell ({k},{i},{j}) outside {l}x{n}x{m}",
                    path=path,
                    line_no=line_no,
                )
            if (k, i, j) in seen:
                raise DatasetFormatError(
                    f"duplicate cell ({k},{i},{j})",
                    path=path,
                    line_no=line_no,
                )
            seen.add((k, i, j))
            cells.append((k, i, j))
    if header is None:
        raise DatasetFormatError(
            "triples file has no 'l n m' header", path=path
        )
    return Dataset3D.from_cells(header, cells, **label_kwargs)


def load_event_csv(
    path: str | Path,
    *,
    height_column: str,
    row_column: str,
    column_column: str,
    delimiter: str = ",",
) -> Dataset3D:
    """Build a 3D context from a CSV event log.

    Each CSV record is one observed event — e.g. ``(month, region,
    item)`` for "item sold in region during month".  The distinct
    values of each designated column become that axis's labels (in
    first-appearance order), and every event sets its cell to 1.
    This is the on-ramp from real transaction logs to FCC mining::

        ds = load_event_csv("sales.csv", height_column="month",
                            row_column="region", column_column="item")
    """
    with open(Path(path), newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ValueError("event CSV has no header row")
        for needed in (height_column, row_column, column_column):
            if needed not in reader.fieldnames:
                raise ValueError(
                    f"column {needed!r} not in CSV header {reader.fieldnames}"
                )
        heights: dict[str, int] = {}
        rows: dict[str, int] = {}
        columns: dict[str, int] = {}
        events: list[tuple[int, int, int]] = []
        for record in reader:
            k = heights.setdefault(record[height_column], len(heights))
            i = rows.setdefault(record[row_column], len(rows))
            j = columns.setdefault(record[column_column], len(columns))
            events.append((k, i, j))
    if not events:
        raise ValueError("event CSV holds no data rows")
    return Dataset3D.from_cells(
        (len(heights), len(rows), len(columns)),
        events,
        height_labels=list(heights),
        row_labels=list(rows),
        column_labels=list(columns),
    )


# ----------------------------------------------------------------------
# Content fingerprint and JSON wire format (the service registry key)
# ----------------------------------------------------------------------
def dataset_fingerprint(dataset: Dataset3D) -> str:
    """A sha256 digest of the dataset's *cell content*.

    Covers the shape and every cell value (bit-packed in canonical C
    order) but deliberately not the labels or the kernel backend:
    neither changes the mined cube sets, so two uploads of the same
    tensor share one registry entry and one threshold-lattice cache
    line.  This is the key the service's dataset registry and result
    cache are organized around.
    """
    import numpy as np

    digest = hashlib.sha256()
    digest.update(repr(tuple(dataset.shape)).encode())
    digest.update(np.packbits(dataset.data, axis=None).tobytes())
    return digest.hexdigest()


def dataset_to_payload(dataset: Dataset3D) -> dict:
    """Serialize a dataset to the sparse JSON upload format.

    The shape, the one-cell coordinate triples, and the axis labels —
    the JSON twin of the sparse-triples text format, used by
    ``POST /v1/datasets``.
    """
    import numpy as np

    return {
        "schema": 1,
        "shape": list(dataset.shape),
        "cells": [
            [int(k), int(i), int(j)] for k, i, j in np.argwhere(dataset.data)
        ],
        "height_labels": list(dataset.height_labels),
        "row_labels": list(dataset.row_labels),
        "column_labels": list(dataset.column_labels),
    }


def dataset_from_payload(payload: dict) -> Dataset3D:
    """Rebuild a dataset from :func:`dataset_to_payload` output.

    Labels are optional — defaults apply when omitted.  Malformed
    payloads raise :class:`DatasetFormatError`, same as the text
    loaders.
    """
    try:
        shape = tuple(int(s) for s in payload["shape"])
        cells = [tuple(int(v) for v in cell) for cell in payload.get("cells", [])]
    except (KeyError, TypeError, ValueError) as error:
        raise DatasetFormatError(
            f"malformed dataset payload: {error}"
        ) from None
    if len(shape) != 3 or any(s < 0 for s in shape):
        raise DatasetFormatError(
            f"dataset payload shape must be 3 non-negative sizes, got {shape!r}"
        )
    label_kwargs = {}
    for key in ("height_labels", "row_labels", "column_labels"):
        if payload.get(key) is not None:
            label_kwargs[key] = [str(v) for v in payload[key]]
    l, n, m = shape
    seen: set[tuple[int, ...]] = set()
    for cell in cells:
        if len(cell) != 3:
            raise DatasetFormatError(f"expected [k, i, j] cells, got {cell!r}")
        k, i, j = cell
        if not (0 <= k < l and 0 <= i < n and 0 <= j < m):
            raise DatasetFormatError(
                f"cell ({k},{i},{j}) outside {l}x{n}x{m}"
            )
        if cell in seen:
            raise DatasetFormatError(f"duplicate cell ({k},{i},{j})")
        seen.add(cell)
    try:
        return Dataset3D.from_cells(shape, cells, **label_kwargs)
    except ValueError as error:
        raise DatasetFormatError(str(error)) from None


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def raw_cubes_to_payload(
    raw: list[tuple[int, int, int]],
) -> list[list[int]]:
    """Serialize raw ``(heights, rows, columns)`` mask triples to JSON.

    Masks are arbitrary-precision ints, which JSON represents exactly;
    this is the chunk-result wire format of the parallel checkpoint
    journal (:mod:`repro.parallel.checkpoint`).
    """
    return [[int(h), int(r), int(c)] for h, r, c in raw]


def raw_cubes_from_payload(payload: list) -> list[tuple[int, int, int]]:
    """Rebuild raw mask triples from :func:`raw_cubes_to_payload` output."""
    out: list[tuple[int, int, int]] = []
    for entry in payload:
        if len(entry) != 3:
            raise ValueError(f"expected [h, r, c] masks, got {entry!r}")
        h, r, c = (int(v) for v in entry)
        out.append((h, r, c))
    return out


def result_to_json(result: MiningResult, dataset: Dataset3D | None = None) -> str:
    """Serialize a result (with optional labels) to a JSON document."""
    payload: dict = {
        "algorithm": result.algorithm,
        "dataset_shape": list(result.dataset_shape) if result.dataset_shape else None,
        "thresholds": (
            list(result.thresholds.as_tuple()) if result.thresholds else None
        ),
        "elapsed_seconds": result.elapsed_seconds,
        "stats": result.stats.to_dict(),
        "cubes": [
            {
                "heights": list(cube.height_indices()),
                "rows": list(cube.row_indices()),
                "columns": list(cube.column_indices()),
            }
            for cube in result
        ],
    }
    if dataset is not None:
        payload["labels"] = {
            "heights": list(dataset.height_labels),
            "rows": list(dataset.row_labels),
            "columns": list(dataset.column_labels),
        }
    return json.dumps(payload, indent=2)


def result_from_json(text: str) -> MiningResult:
    """Rebuild a :class:`MiningResult` from :func:`result_to_json` output."""
    payload = json.loads(text)
    cubes = [
        Cube.from_indices(entry["heights"], entry["rows"], entry["columns"])
        for entry in payload["cubes"]
    ]
    thresholds = (
        Thresholds(*payload["thresholds"]) if payload.get("thresholds") else None
    )
    shape = payload.get("dataset_shape")
    return MiningResult(
        cubes=cubes,
        algorithm=payload.get("algorithm", "unknown"),
        thresholds=thresholds,
        dataset_shape=tuple(shape) if shape else None,
        elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        stats=MiningStats.from_dict(payload.get("stats") or {}),
    )


def result_to_csv(result: MiningResult, dataset: Dataset3D | None = None) -> str:
    """One cube per CSV row: supports plus space-separated members."""
    buffer = _io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["h_support", "r_support", "c_support", "heights", "rows", "columns"]
    )
    for cube in result:
        if dataset is not None:
            hs = " ".join(dataset.height_labels[k] for k in cube.height_indices())
            rs = " ".join(dataset.row_labels[i] for i in cube.row_indices())
            cs = " ".join(dataset.column_labels[j] for j in cube.column_indices())
        else:
            hs = " ".join(str(k) for k in cube.height_indices())
            rs = " ".join(str(i) for i in cube.row_indices())
            cs = " ".join(str(j) for j in cube.column_indices())
        writer.writerow(
            [cube.h_support, cube.r_support, cube.c_support, hs, rs, cs]
        )
    return buffer.getvalue()
