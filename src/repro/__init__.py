"""repro — Frequent Closed Cube mining in 3D binary datasets.

A full reproduction of "Mining Frequent Closed Cubes in 3D Datasets"
(Ji, Tan, Tung — VLDB 2006): the FCC model, the RSM framework on top of
a from-scratch 2D closed-pattern substrate (D-Miner and friends), the
CubeMiner algorithm, and parallel variants of both.

Quickstart::

    from repro import Dataset3D, Thresholds, mine

    dataset = Dataset3D(binary_tensor)            # (heights, rows, cols)
    result = mine(dataset, Thresholds(2, 2, 2))   # CubeMiner by default
    for cube in result:
        print(cube.format(dataset))
"""

from .api import mine
from .core import Cube, Dataset3D, MiningResult, Thresholds, reference_mine
from .cubeminer import CubeMiner, HeightOrder, cubeminer_mine

__version__ = "1.0.0"

__all__ = [
    "mine",
    "Cube",
    "Dataset3D",
    "MiningResult",
    "Thresholds",
    "reference_mine",
    "CubeMiner",
    "HeightOrder",
    "cubeminer_mine",
    "__version__",
]
