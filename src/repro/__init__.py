"""repro — Frequent Closed Cube mining in 3D binary datasets.

A full reproduction of "Mining Frequent Closed Cubes in 3D Datasets"
(Ji, Tan, Tung — VLDB 2006): the FCC model, the RSM framework on top of
a from-scratch 2D closed-pattern substrate (D-Miner and friends), the
CubeMiner algorithm, and parallel variants of both.

Quickstart::

    from repro import Dataset3D, Thresholds, mine

    dataset = Dataset3D(binary_tensor)            # (heights, rows, cols)
    result = mine(dataset, Thresholds(2, 2, 2))   # CubeMiner by default
    for cube in result:
        print(cube.format(dataset))

Every run is instrumented: ``result.stats.metrics`` carries the node /
prune / kernel counters, and ``mine(..., on_event=, progress=,
deadline=)`` adds typed event streams, periodic progress callbacks and
cooperative cancellation (see :mod:`repro.obs` and
``docs/observability.md``).
"""

from .api import ALGORITHMS, mine, register_algorithm, unregister_algorithm
from .core import Cube, Dataset3D, MiningResult, MiningStats, Thresholds, reference_mine
from .cubeminer import CubeMiner, HeightOrder, cubeminer_mine
from .obs import (
    CollectingSink,
    MiningCancelled,
    MiningMetrics,
    ProgressController,
    ProgressUpdate,
)
from .options import CubeMinerOptions, ParallelOptions, ReferenceOptions, RSMOptions

__version__ = "2.2.0"

__all__ = [
    "mine",
    "ALGORITHMS",
    "register_algorithm",
    "unregister_algorithm",
    "Cube",
    "Dataset3D",
    "MiningResult",
    "MiningStats",
    "Thresholds",
    "reference_mine",
    "CubeMiner",
    "HeightOrder",
    "cubeminer_mine",
    "CubeMinerOptions",
    "RSMOptions",
    "ParallelOptions",
    "ReferenceOptions",
    "MiningMetrics",
    "MiningCancelled",
    "ProgressController",
    "ProgressUpdate",
    "CollectingSink",
    "__version__",
]
