"""Cutters: the partitioned zero-cells that drive CubeMiner.

Section 5.1 of the paper groups the zero cells of the tensor row by row:
for every (height ``k``, row ``i``) pair that holds at least one zero, a
*cutter* ``(W, X, Y)`` is formed with left atom ``W = {h_k}``, middle
atom ``X = {r_i}``, and right atom ``Y`` the set of zero columns in that
row.  ``Z`` therefore has at most ``l * n`` cutters.

Cutter order matters only for performance, never for the result set.
The paper sorts by left atom then middle atom, and Section 7.1.1 shows
that putting zero-heavy height slices first ("zero-decreasing order")
prunes the search space earliest.  :func:`build_cutters` implements all
three orders studied in Figure 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.bitset import bit_count, indices
from ..core.dataset import Dataset3D

__all__ = [
    "Cutter",
    "CutterIndex",
    "HeightOrder",
    "height_permutation",
    "build_cutters",
]


@dataclass(frozen=True, slots=True)
class Cutter:
    """One element of Z: a (height, row) pair and its zero-column mask."""

    height: int
    row: int
    columns: int

    @property
    def left_mask(self) -> int:
        """The left atom W as a height bitmask."""
        return 1 << self.height

    @property
    def middle_mask(self) -> int:
        """The middle atom X as a row bitmask."""
        return 1 << self.row

    def format(self, dataset: Dataset3D | None = None) -> str:
        """Render as in Table 3, e.g. ``h1, r2, c4c5``."""
        cols = indices(self.columns)
        if dataset is not None:
            h = dataset.height_labels[self.height]
            r = dataset.row_labels[self.row]
            c = "".join(dataset.column_labels[j] for j in cols)
        else:
            h = f"h{self.height + 1}"
            r = f"r{self.row + 1}"
            c = "".join(f"c{j + 1}" for j in cols)
        return f"{h}, {r}, {c}"

    def __str__(self) -> str:
        return self.format()


class HeightOrder(enum.Enum):
    """Height-slice orderings studied in Figure 2 (Section 7.1.1)."""

    ORIGINAL = "original"
    ZERO_DECREASING = "zero-decreasing"
    ZERO_INCREASING = "zero-increasing"


def height_permutation(dataset: Dataset3D, order: HeightOrder) -> list[int]:
    """Return the height indices in the order their cutters should apply.

    Zero-decreasing places slices with *more* zeros first (the paper's
    winning heuristic); ties keep the original relative order so runs
    are deterministic.
    """
    heights = list(range(dataset.n_heights))
    if order is HeightOrder.ORIGINAL:
        return heights
    zero_counts = [dataset.zeros_in_height(k) for k in heights]
    reverse = order is HeightOrder.ZERO_DECREASING
    return sorted(heights, key=lambda k: (-zero_counts[k] if reverse else zero_counts[k], k))


def build_cutters(
    dataset: Dataset3D, order: HeightOrder = HeightOrder.ORIGINAL
) -> list[Cutter]:
    """Compute the cutter set Z in the requested height order.

    Within one height slice, cutters follow ascending row index (the
    paper's "ascending order of left atom first and middle atom second").
    """
    cutters: list[Cutter] = []
    for k in height_permutation(dataset, order):
        for i in range(dataset.n_rows):
            zeros = dataset.zeros_mask(k, i)
            if zeros:
                cutters.append(Cutter(height=k, row=i, columns=zeros))
    return cutters


def total_zero_cells(cutters: list[Cutter]) -> int:
    """Sum of zero cells covered by the cutter set (sanity-check helper)."""
    return sum(bit_count(cutter.columns) for cutter in cutters)


class CutterIndex:
    """Grouped index over a cutter list for the per-node applicability scan.

    :func:`build_cutters` emits Z sorted by the height permutation and,
    within one height, by ascending row — so each height's cutters form
    one contiguous run of the list.  The index records those runs once
    (start offsets, the run's height, and the bitmask of its rows), and
    :meth:`first_applicable` walks runs instead of individual cutters: a
    run whose height left the node, or none of whose rows remain in the
    node, is skipped with two bit tests regardless of how many cutters
    it holds.  Within a surviving run only the row and column atoms need
    testing (the height is shared).

    Arbitrary cutter lists (tests pin hand-built Z's) are handled too:
    runs are detected as maximal stretches of equal height, so a height
    split across several stretches simply produces several groups.
    """

    __slots__ = (
        "n_cutters",
        "_rows",
        "_columns",
        "_bounds",
        "_group_heights",
        "_group_rowmasks",
        "_group_of",
    )

    def __init__(self, cutters: list[Cutter]) -> None:
        self.n_cutters = len(cutters)
        self._rows = tuple(cutter.row for cutter in cutters)
        self._columns = tuple(cutter.columns for cutter in cutters)
        bounds: list[int] = []
        group_heights: list[int] = []
        group_rowmasks: list[int] = []
        group_of: list[int] = []
        for index, cutter in enumerate(cutters):
            if not group_heights or cutter.height != group_heights[-1]:
                bounds.append(index)
                group_heights.append(cutter.height)
                group_rowmasks.append(0)
            group_rowmasks[-1] |= 1 << cutter.row
            group_of.append(len(group_heights) - 1)
        bounds.append(self.n_cutters)
        group_of.append(len(group_heights))  # sentinel for start == n_cutters
        self._bounds = tuple(bounds)
        self._group_heights = tuple(group_heights)
        self._group_rowmasks = tuple(group_rowmasks)
        self._group_of = tuple(group_of)

    def first_applicable(
        self, heights: int, rows: int, columns: int, start: int
    ) -> int:
        """First index >= ``start`` whose cutter intersects the node, or
        ``n_cutters`` when none does (Algorithm 2, line 6)."""
        n_cutters = self.n_cutters
        if start >= n_cutters:
            return n_cutters
        cutter_rows = self._rows
        cutter_columns = self._columns
        bounds = self._bounds
        group_heights = self._group_heights
        group_rowmasks = self._group_rowmasks
        n_groups = len(group_heights)
        group = self._group_of[start]
        low = start
        while group < n_groups:
            high = bounds[group + 1]
            if heights >> group_heights[group] & 1 and rows & group_rowmasks[group]:
                for index in range(low, high):
                    if rows >> cutter_rows[index] & 1 and columns & cutter_columns[index]:
                        return index
            low = high
            group += 1
        return n_cutters
