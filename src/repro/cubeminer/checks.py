"""Closure checks for CubeMiner nodes (Lemmas 4 and 5).

Both checks ask the same question from two angles: does there exist an
element *outside* the node that the node's cells do not rule out?  If a
height ``h`` outside ``H'`` has no zero inside ``R' x C'``, then
``(H' + h, R', C')`` is a strictly larger complete cube and the node can
never become height-closed — prune it (Lemma 4).  Symmetrically for an
absent row (Lemma 5).

The paper phrases the test over cutters; here each (height, row) pair
carries its zero-column mask directly (an absent cutter is the zero
mask 0), so one ``&`` per pair decides it.
"""

from __future__ import annotations

from ..core.bitset import iter_bits
from ..core.dataset import Dataset3D

__all__ = ["height_set_closed", "row_set_closed"]


def height_set_closed(dataset: Dataset3D, heights: int, rows: int, columns: int) -> bool:
    """Lemma 4 (Hcheck): False when some absent height covers R' x C'.

    A height ``h`` outside ``heights`` "covers" the node when every row
    of ``rows`` has no zero within ``columns`` on slice ``h`` — in that
    case the node is unclosed in the height set.
    """
    for h in range(dataset.n_heights):
        if heights >> h & 1:
            continue
        for i in iter_bits(rows):
            if dataset.zeros_mask(h, i) & columns:
                break
        else:
            return False
    return True


def row_set_closed(dataset: Dataset3D, heights: int, rows: int, columns: int) -> bool:
    """Lemma 5 (Rcheck): False when some absent row covers H' x C'."""
    for i in range(dataset.n_rows):
        if rows >> i & 1:
            continue
        for h in iter_bits(heights):
            if dataset.zeros_mask(h, i) & columns:
                break
        else:
            return False
    return True
