"""Closure checks for CubeMiner nodes (Lemmas 4 and 5).

Both checks ask the same question from two angles: does there exist an
element *outside* the node that the node's cells do not rule out?  If a
height ``h`` outside ``H'`` has no zero inside ``R' x C'``, then
``(H' + h, R', C')`` is a strictly larger complete cube and the node can
never become height-closed — prune it (Lemma 4).  Symmetrically for an
absent row (Lemma 5).

"``h`` has no zero inside ``R' x C'``" is exactly "``h`` supports
``R' x C'``", so both lemmas are one kernel support sweep restricted to
the elements outside the node: the node is closed iff no outside
candidate supports it.

With a :class:`~repro.core.closure.ClosureCache` the sweep is replaced
by the cache's zero-witness fast path: each outside element's last
known zero location is revalidated against the current node in O(1)
bit operations and only stale witnesses fall back to a rescan.  The
answers are identical either way — the differential suite pins the two
paths against each other.
"""

from __future__ import annotations

from ..core.bitset import full_mask
from ..core.closure import ClosureCache
from ..core.dataset import Dataset3D

__all__ = ["height_set_closed", "row_set_closed"]


def height_set_closed(
    dataset: Dataset3D,
    heights: int,
    rows: int,
    columns: int,
    *,
    cache: ClosureCache | None = None,
) -> bool:
    """Lemma 4 (Hcheck): False when some absent height covers R' x C'."""
    if cache is not None:
        return cache.height_set_closed(dataset, heights, rows, columns)
    outside = full_mask(dataset.n_heights) & ~heights
    return (
        dataset.kernel.grid_supporting_heights(
            dataset.ones_grid(), rows, columns, candidates=outside
        )
        == 0
    )


def row_set_closed(
    dataset: Dataset3D,
    heights: int,
    rows: int,
    columns: int,
    *,
    cache: ClosureCache | None = None,
) -> bool:
    """Lemma 5 (Rcheck): False when some absent row covers H' x C'."""
    if cache is not None:
        return cache.row_set_closed(dataset, heights, rows, columns)
    outside = full_mask(dataset.n_rows) & ~rows
    return (
        dataset.kernel.grid_supporting_rows(
            dataset.ones_grid(), heights, columns, candidates=outside
        )
        == 0
    )
