"""CubeMiner: direct 3D mining of frequent closed cubes (Section 5)."""

from .algorithm import CubeMiner, CubeMinerStats, cubeminer_mine
from .checks import height_set_closed, row_set_closed
from .cutter import Cutter, HeightOrder, build_cutters, height_permutation
from .trace import (
    PRUNE_METRIC_FIELDS,
    Branch,
    PruneReason,
    TraceNode,
    prune_counts,
    render_tree,
    trace_tree,
)

__all__ = [
    "CubeMiner",
    "CubeMinerStats",
    "cubeminer_mine",
    "height_set_closed",
    "row_set_closed",
    "Cutter",
    "HeightOrder",
    "build_cutters",
    "height_permutation",
    "Branch",
    "PruneReason",
    "TraceNode",
    "PRUNE_METRIC_FIELDS",
    "prune_counts",
    "render_tree",
    "trace_tree",
]
