"""The CubeMiner algorithm (Section 5, Algorithms 1-4).

CubeMiner splits the full tensor ``(H, R, C)`` depth-first with the
cutter list Z.  At a node ``(H', R', C')`` the first applicable cutter
``(W, X, Y)`` spawns up to three sons:

* **left**   ``(H' \\ W, R', C')`` — kept if ``minH`` still holds, the
  left-track set is clean (Lemma 2), and the row set stays closed
  (Lemma 5);
* **middle** ``(H', R' \\ X, C')`` — kept if ``minR`` holds, the
  middle-track set is clean (Lemma 3), and the height set stays closed
  (Lemma 4);
* **right**  ``(H', R', C' \\ Y)`` — kept if ``minC`` holds and both
  closure checks pass.

Cutters that do not intersect a node are skipped.  A node that survives
the whole cutter list is an all-ones, closed, frequent cube (Theorem 2)
and is emitted.

The recursion of Algorithm 2 is replaced by an explicit stack: the tree
depth equals ``|Z|``, which exceeds CPython's recursion limit on any
non-toy dataset.

Every run keeps a :class:`~repro.obs.metrics.MiningMetrics` counter set
up to date (nodes, sons, per-lemma prune hits); ``on_event`` streams
typed node/prune events and ``progress``/``deadline`` give periodic
callbacks, cooperative cancellation and wall-clock budgets — a
cancelled run raises :class:`~repro.obs.progress.MiningCancelled` with
the partial result attached.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from ..core.bitset import bit_count, full_mask
from ..core.closure import ClosureCache, resolve_closure_cache
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.result import MiningResult, MiningStats
from ..obs import (
    EventSink,
    MineDone,
    MineStart,
    MiningCancelled,
    MiningMetrics,
    NodeEvent,
    ProgressController,
    PruneEvent,
    resolve_progress,
)
from .checks import height_set_closed, row_set_closed
from .cutter import Cutter, CutterIndex, HeightOrder, build_cutters

__all__ = ["CubeMinerStats", "cubeminer_mine", "CubeMiner"]

#: Backward-compatible alias: CubeMiner's run counters are now the
#: library-wide :class:`~repro.obs.metrics.MiningMetrics` (a superset of
#: the historical ``CubeMinerStats`` fields).
CubeMinerStats = MiningMetrics


def cubeminer_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    order: HeightOrder = HeightOrder.ZERO_DECREASING,
    cutters: list[Cutter] | None = None,
    closure_cache: "ClosureCache | int | None" = None,
    metrics: MiningMetrics | None = None,
    on_event: EventSink | None = None,
    progress: "ProgressController | Callable | None" = None,
    deadline: float | None = None,
) -> MiningResult:
    """Mine all frequent closed cubes of ``dataset`` with CubeMiner.

    Parameters
    ----------
    dataset:
        The 3D boolean context.
    thresholds:
        The three monotone minimum supports.
    order:
        Height-slice ordering heuristic for the cutter list; the default
        is the paper's winning zero-decreasing order (Section 7.1.1).
    cutters:
        Pre-built cutter list (overrides ``order``); used by the parallel
        driver and by tests that pin a specific Z.
    closure_cache:
        Closure-memoization control: ``None`` (default) runs with a
        fresh :class:`~repro.core.closure.ClosureCache`, ``0`` disables
        memoization, a positive int bounds a fresh cache to that many
        entries, and a ``ClosureCache`` instance is reused as-is.  The
        cache never changes the mined cubes — only how fast the Lemma
        4-5 checks run; its hit/miss/eviction tallies land in the run's
        metrics (``closure_cache_hits`` etc.).
    metrics:
        Counter set to accumulate into (a fresh one per run by default);
        pass a shared instance to observe the run in flight or to tally
        several runs together.
    on_event:
        Optional sink receiving typed start/node/prune/done events.
    progress:
        A :class:`~repro.obs.progress.ProgressController` or a bare
        callback taking :class:`~repro.obs.progress.ProgressUpdate`.
    deadline:
        Wall-clock budget in seconds; on expiry the run raises
        :class:`~repro.obs.progress.MiningCancelled` whose ``partial``
        attribute holds the cubes and metrics gathered so far.
    """
    start = time.perf_counter()
    stats = metrics if metrics is not None else MiningMetrics()
    controller = resolve_progress(progress, deadline)
    if cutters is None:
        cutters = build_cutters(dataset, order)
        stats.cutters_built += len(cutters)
    stats.n_cutters = len(cutters)
    algorithm = f"cubeminer[{order.value}]"
    if on_event is not None:
        on_event(
            MineStart(
                algorithm,
                dataset.shape,
                thresholds.as_tuple() + (thresholds.min_volume,),
            )
        )

    found: list[Cube] = []
    root = (full_mask(dataset.n_heights), full_mask(dataset.n_rows), full_mask(dataset.n_columns))
    try:
        if controller is not None:
            # Checkpoint once up front so a zero/expired deadline or a
            # pre-cancelled controller aborts deterministically.
            controller.checkpoint(stats, phase="cubeminer", done=0)
        if thresholds.feasible_for_shape(dataset.shape):
            found, stats = _run(
                dataset,
                thresholds,
                cutters,
                [(root, 0, 0, 0)],
                stats,
                closure_cache=resolve_closure_cache(closure_cache),
                sink=on_event,
                progress=controller,
            )
    except MiningCancelled as exc:
        elapsed = time.perf_counter() - start
        partial_cubes = list(exc.partial_cubes)
        exc.metrics = stats
        exc.partial = MiningResult(
            cubes=partial_cubes,
            algorithm=algorithm,
            thresholds=thresholds,
            dataset_shape=dataset.shape,
            elapsed_seconds=elapsed,
            stats=MiningStats(metrics=stats),
        )
        if on_event is not None:
            on_event(MineDone(algorithm, len(exc.partial), elapsed, cancelled=True))
        raise

    result = MiningResult(
        cubes=found,
        algorithm=algorithm,
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=MiningStats(metrics=stats),
    )
    if on_event is not None:
        on_event(MineDone(algorithm, len(result), result.elapsed_seconds))
    return result


def _run(
    dataset: Dataset3D,
    thresholds: Thresholds,
    cutters: list[Cutter],
    stack: list[tuple[tuple[int, int, int], int, int, int]],
    stats: MiningMetrics,
    *,
    closure_cache: ClosureCache | None = None,
    sink: EventSink | None = None,
    progress: ProgressController | None = None,
) -> tuple[list[Cube], MiningMetrics]:
    """Drain a work stack of ``((H', R', C'), cutter_index, TL, TM)`` items.

    Exposed separately so the parallel driver can seed the stack with a
    single branch of the tree and replay exactly the sequential search.
    On cancellation the raised ``MiningCancelled`` carries the cubes
    found so far in ``partial_cubes``.  ``closure_cache`` memoizes the
    Lemma 4-5 closure checks (``None`` recomputes every check); its
    counter deltas are folded into ``stats`` even on cancellation.
    """
    min_h, min_r, min_c = thresholds.as_tuple()
    min_volume = thresholds.min_volume
    n_cutters = len(cutters)
    cutter_index = CutterIndex(cutters)
    first_applicable = cutter_index.first_applicable
    cache = closure_cache
    cache_base = cache.counters() if cache is not None else None
    check_every = progress.check_every if progress is not None else 0
    found: list[Cube] = []
    push = stack.append
    pop = stack.pop
    # Events fire up to four times per node; ``_make`` skips the keyword
    # machinery of the NamedTuple constructor, which is measurable here.
    node_event = NodeEvent._make
    prune_event = PruneEvent._make
    try:
        while stack:
            stats.max_stack_depth = max(stats.max_stack_depth, len(stack))
            (heights, rows, columns), index, track_left, track_middle = pop()
            stats.nodes_visited += 1
            stats.kernel_ops += 1
            if check_every and not stats.nodes_visited % check_every:
                progress.checkpoint(
                    stats, phase="cubeminer", done=stats.nodes_visited
                )
            # Skip cutters that do not intersect this node (Algorithm 2, line 6).
            index = first_applicable(heights, rows, columns, index)
            if index == n_cutters:
                # Survived every cutter: all-ones, closed, frequent (Theorem 2).
                stats.leaves_emitted += 1
                found.append(Cube(heights, rows, columns))
                if sink is not None:
                    sink(node_event((heights, rows, columns, index, True)))
                continue
            if sink is not None:
                sink(node_event((heights, rows, columns, index, False)))
            cutter = cutters[index]

            left_atom = 1 << cutter.height
            middle_atom = 1 << cutter.row
            next_index = index + 1
            if min_volume > 1:
                # Volume is monotone down the tree: each son loses cells.
                h_count = bit_count(heights)
                r_count = bit_count(rows)
                c_count = bit_count(columns)

            # Left son (H' \ W, R', C') — Algorithm 2 lines 9-14.
            son_heights = heights & ~left_atom
            if bit_count(son_heights) < min_h:
                stats.pruned_min_h += 1
                if sink is not None:
                    sink(prune_event(("left", "pruned_min_h", son_heights, rows, columns)))
            elif min_volume > 1 and (h_count - 1) * r_count * c_count < min_volume:
                stats.pruned_min_volume += 1
                if sink is not None:
                    sink(prune_event(("left", "pruned_min_volume", son_heights, rows, columns)))
            elif left_atom & track_left:
                stats.pruned_left_track += 1
                if sink is not None:
                    sink(prune_event(("left", "pruned_left_track", son_heights, rows, columns)))
            elif not row_set_closed(dataset, son_heights, rows, columns, cache=cache):
                stats.kernel_ops += 1
                stats.pruned_row_unclosed += 1
                if sink is not None:
                    sink(prune_event(("left", "pruned_row_unclosed", son_heights, rows, columns)))
            else:
                stats.kernel_ops += 1
                stats.sons_left += 1
                push(((son_heights, rows, columns), next_index, track_left, track_middle))

            # Middle son (H', R' \ X, C') — lines 15-20.
            son_rows = rows & ~middle_atom
            if bit_count(son_rows) < min_r:
                stats.pruned_min_r += 1
                if sink is not None:
                    sink(prune_event(("middle", "pruned_min_r", heights, son_rows, columns)))
            elif min_volume > 1 and h_count * (r_count - 1) * c_count < min_volume:
                stats.pruned_min_volume += 1
                if sink is not None:
                    sink(prune_event(("middle", "pruned_min_volume", heights, son_rows, columns)))
            elif middle_atom & track_middle:
                stats.pruned_middle_track += 1
                if sink is not None:
                    sink(prune_event(("middle", "pruned_middle_track", heights, son_rows, columns)))
            elif not height_set_closed(dataset, heights, son_rows, columns, cache=cache):
                stats.kernel_ops += 1
                stats.pruned_height_unclosed += 1
                if sink is not None:
                    sink(prune_event(("middle", "pruned_height_unclosed", heights, son_rows, columns)))
            else:
                stats.kernel_ops += 1
                stats.sons_middle += 1
                push(((heights, son_rows, columns), next_index, track_left | left_atom, track_middle))

            # Right son (H', R', C' \ Y) — lines 21-29.
            son_columns = columns & ~cutter.columns
            if bit_count(son_columns) < min_c:
                stats.pruned_min_c += 1
                if sink is not None:
                    sink(prune_event(("right", "pruned_min_c", heights, rows, son_columns)))
            elif (
                min_volume > 1
                and h_count * r_count * bit_count(son_columns) < min_volume
            ):
                stats.pruned_min_volume += 1
                if sink is not None:
                    sink(prune_event(("right", "pruned_min_volume", heights, rows, son_columns)))
            elif not height_set_closed(dataset, heights, rows, son_columns, cache=cache):
                stats.kernel_ops += 1
                stats.pruned_height_unclosed += 1
                if sink is not None:
                    sink(prune_event(("right", "pruned_height_unclosed", heights, rows, son_columns)))
            elif not row_set_closed(dataset, heights, rows, son_columns, cache=cache):
                stats.kernel_ops += 2
                stats.pruned_row_unclosed += 1
                if sink is not None:
                    sink(prune_event(("right", "pruned_row_unclosed", heights, rows, son_columns)))
            else:
                stats.kernel_ops += 2
                stats.sons_right += 1
                push(
                    (
                        (heights, rows, son_columns),
                        next_index,
                        track_left | left_atom,
                        track_middle | middle_atom,
                    )
                )
    except MiningCancelled as exc:
        exc.partial_cubes = found
        exc.metrics = stats
        raise
    finally:
        if cache is not None:
            hits0, misses0, evictions0 = cache_base
            stats.closure_cache_hits += cache.hits - hits0
            stats.closure_cache_misses += cache.misses - misses0
            stats.closure_cache_evictions += cache.evictions - evictions0
    return found, stats


class CubeMiner:
    """Object-style facade over :func:`cubeminer_mine`.

    Lets callers fix the ordering heuristic once and mine several
    datasets, mirroring how the other miners in the library are used::

        miner = CubeMiner(order=HeightOrder.ZERO_DECREASING)
        result = miner.mine(dataset, Thresholds(2, 2, 2))
    """

    name = "cubeminer"

    def __init__(self, order: HeightOrder = HeightOrder.ZERO_DECREASING) -> None:
        self.order = order

    def mine(self, dataset: Dataset3D, thresholds: Thresholds) -> MiningResult:
        return cubeminer_mine(dataset, thresholds, order=self.order)

    def __repr__(self) -> str:
        return f"CubeMiner(order={self.order.value!r})"
