"""The CubeMiner algorithm (Section 5, Algorithms 1-4).

CubeMiner splits the full tensor ``(H, R, C)`` depth-first with the
cutter list Z.  At a node ``(H', R', C')`` the first applicable cutter
``(W, X, Y)`` spawns up to three sons:

* **left**   ``(H' \\ W, R', C')`` — kept if ``minH`` still holds, the
  left-track set is clean (Lemma 2), and the row set stays closed
  (Lemma 5);
* **middle** ``(H', R' \\ X, C')`` — kept if ``minR`` holds, the
  middle-track set is clean (Lemma 3), and the height set stays closed
  (Lemma 4);
* **right**  ``(H', R', C' \\ Y)`` — kept if ``minC`` holds and both
  closure checks pass.

Cutters that do not intersect a node are skipped.  A node that survives
the whole cutter list is an all-ones, closed, frequent cube (Theorem 2)
and is emitted.

The recursion of Algorithm 2 is replaced by an explicit stack: the tree
depth equals ``|Z|``, which exceeds CPython's recursion limit on any
non-toy dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.bitset import bit_count, full_mask
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.result import MiningResult
from .checks import height_set_closed, row_set_closed
from .cutter import Cutter, HeightOrder, build_cutters

__all__ = ["CubeMinerStats", "cubeminer_mine", "CubeMiner"]


@dataclass
class CubeMinerStats:
    """Search-tree instrumentation for one CubeMiner run."""

    n_cutters: int = 0
    nodes_visited: int = 0
    leaves_emitted: int = 0
    pruned_min_h: int = 0
    pruned_min_r: int = 0
    pruned_min_c: int = 0
    pruned_min_volume: int = 0
    pruned_left_track: int = 0
    pruned_middle_track: int = 0
    pruned_height_unclosed: int = 0
    pruned_row_unclosed: int = 0
    max_stack_depth: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    def total_pruned(self) -> int:
        return (
            self.pruned_min_h
            + self.pruned_min_r
            + self.pruned_min_c
            + self.pruned_min_volume
            + self.pruned_left_track
            + self.pruned_middle_track
            + self.pruned_height_unclosed
            + self.pruned_row_unclosed
        )


def cubeminer_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    order: HeightOrder = HeightOrder.ZERO_DECREASING,
    cutters: list[Cutter] | None = None,
) -> MiningResult:
    """Mine all frequent closed cubes of ``dataset`` with CubeMiner.

    Parameters
    ----------
    dataset:
        The 3D boolean context.
    thresholds:
        The three monotone minimum supports.
    order:
        Height-slice ordering heuristic for the cutter list; the default
        is the paper's winning zero-decreasing order (Section 7.1.1).
    cutters:
        Pre-built cutter list (overrides ``order``); used by the parallel
        driver and by tests that pin a specific Z.
    """
    start = time.perf_counter()
    stats = CubeMinerStats()
    if cutters is None:
        cutters = build_cutters(dataset, order)
    stats.n_cutters = len(cutters)

    found: list[Cube] = []
    root = (full_mask(dataset.n_heights), full_mask(dataset.n_rows), full_mask(dataset.n_columns))
    if thresholds.feasible_for_shape(dataset.shape):
        found, stats = _run(dataset, thresholds, cutters, [(root, 0, 0, 0)], stats)
    return MiningResult(
        cubes=found,
        algorithm=f"cubeminer[{order.value}]",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=stats.as_dict(),
    )


def _run(
    dataset: Dataset3D,
    thresholds: Thresholds,
    cutters: list[Cutter],
    stack: list[tuple[tuple[int, int, int], int, int, int]],
    stats: CubeMinerStats,
) -> tuple[list[Cube], CubeMinerStats]:
    """Drain a work stack of ``((H', R', C'), cutter_index, TL, TM)`` items.

    Exposed separately so the parallel driver can seed the stack with a
    single branch of the tree and replay exactly the sequential search.
    """
    min_h, min_r, min_c = thresholds.as_tuple()
    min_volume = thresholds.min_volume
    n_cutters = len(cutters)
    kernel = dataset.kernel
    cutter_handle = kernel.pack_cutters(
        [cutter.height for cutter in cutters],
        [cutter.row for cutter in cutters],
        [cutter.columns for cutter in cutters],
        dataset.shape,
    )
    first_applicable = kernel.first_applicable_cutter
    found: list[Cube] = []
    push = stack.append
    pop = stack.pop
    while stack:
        stats.max_stack_depth = max(stats.max_stack_depth, len(stack))
        (heights, rows, columns), index, track_left, track_middle = pop()
        stats.nodes_visited += 1
        # Skip cutters that do not intersect this node (Algorithm 2, line 6).
        index = first_applicable(cutter_handle, heights, rows, columns, index)
        if index == n_cutters:
            # Survived every cutter: all-ones, closed, frequent (Theorem 2).
            stats.leaves_emitted += 1
            found.append(Cube(heights, rows, columns))
            continue
        cutter = cutters[index]

        left_atom = 1 << cutter.height
        middle_atom = 1 << cutter.row
        next_index = index + 1
        if min_volume > 1:
            # Volume is monotone down the tree: each son loses cells.
            h_count = bit_count(heights)
            r_count = bit_count(rows)
            c_count = bit_count(columns)

        # Left son (H' \ W, R', C') — Algorithm 2 lines 9-14.
        son_heights = heights & ~left_atom
        if bit_count(son_heights) < min_h:
            stats.pruned_min_h += 1
        elif min_volume > 1 and (h_count - 1) * r_count * c_count < min_volume:
            stats.pruned_min_volume += 1
        elif left_atom & track_left:
            stats.pruned_left_track += 1
        elif not row_set_closed(dataset, son_heights, rows, columns):
            stats.pruned_row_unclosed += 1
        else:
            push(((son_heights, rows, columns), next_index, track_left, track_middle))

        # Middle son (H', R' \ X, C') — lines 15-20.
        son_rows = rows & ~middle_atom
        if bit_count(son_rows) < min_r:
            stats.pruned_min_r += 1
        elif min_volume > 1 and h_count * (r_count - 1) * c_count < min_volume:
            stats.pruned_min_volume += 1
        elif middle_atom & track_middle:
            stats.pruned_middle_track += 1
        elif not height_set_closed(dataset, heights, son_rows, columns):
            stats.pruned_height_unclosed += 1
        else:
            push(((heights, son_rows, columns), next_index, track_left | left_atom, track_middle))

        # Right son (H', R', C' \ Y) — lines 21-29.
        son_columns = columns & ~cutter.columns
        if bit_count(son_columns) < min_c:
            stats.pruned_min_c += 1
        elif (
            min_volume > 1
            and h_count * r_count * bit_count(son_columns) < min_volume
        ):
            stats.pruned_min_volume += 1
        elif not height_set_closed(dataset, heights, rows, son_columns):
            stats.pruned_height_unclosed += 1
        elif not row_set_closed(dataset, heights, rows, son_columns):
            stats.pruned_row_unclosed += 1
        else:
            push(
                (
                    (heights, rows, son_columns),
                    next_index,
                    track_left | left_atom,
                    track_middle | middle_atom,
                )
            )
    return found, stats


class CubeMiner:
    """Object-style facade over :func:`cubeminer_mine`.

    Lets callers fix the ordering heuristic once and mine several
    datasets, mirroring how the other miners in the library are used::

        miner = CubeMiner(order=HeightOrder.ZERO_DECREASING)
        result = miner.mine(dataset, Thresholds(2, 2, 2))
    """

    name = "cubeminer"

    def __init__(self, order: HeightOrder = HeightOrder.ZERO_DECREASING) -> None:
        self.order = order

    def mine(self, dataset: Dataset3D, thresholds: Thresholds) -> MiningResult:
        return cubeminer_mine(dataset, thresholds, order=self.order)

    def __repr__(self) -> str:
        return f"CubeMiner(order={self.order.value!r})"
