"""Traced CubeMiner: the full split tree of Figure 1.

:func:`trace_tree` re-runs CubeMiner on a (small!) dataset recording
every node: its cube, tree level (cutter step), branch kind and — for
pruned sons — which rule fired.  The paper's Figure 1 prune categories
map to :class:`PruneReason` as

* (a) left son whose cutter's left atom cut the path → ``LEFT_TRACK``,
* (b) middle son whose cutter's middle atom cut the path → ``MIDDLE_TRACK``,
* (c) node unclosed in the height set → ``HEIGHT_UNCLOSED``,
* (d) node unclosed in the row set → ``ROW_UNCLOSED``,

plus the three monotone-threshold prunes.  :func:`render_tree` draws
the tree as indented ASCII for the examples and docs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.bitset import bit_count, full_mask
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from .checks import height_set_closed, row_set_closed
from .cutter import Cutter, HeightOrder, build_cutters

__all__ = [
    "Branch",
    "PruneReason",
    "TraceNode",
    "trace_tree",
    "render_tree",
    "PRUNE_METRIC_FIELDS",
    "prune_counts",
]

_MAX_TRACE_CELLS = 4096


class Branch(enum.Enum):
    """How a node was derived from its parent."""

    ROOT = "root"
    LEFT = "L"
    MIDDLE = "M"
    RIGHT = "R"


class PruneReason(enum.Enum):
    """Why a candidate son was discarded (Figure 1's useless nodes)."""

    MIN_H = "minH violated"
    MIN_R = "minR violated"
    MIN_C = "minC violated"
    MIN_VOLUME = "minVolume violated"
    LEFT_TRACK = "(a) left atom already cut the path"
    MIDDLE_TRACK = "(b) middle atom already cut the path"
    HEIGHT_UNCLOSED = "(c) unclosed in height set"
    ROW_UNCLOSED = "(d) unclosed in row set"


#: Which :class:`~repro.obs.metrics.MiningMetrics` counter the live
#: miner increments for each :class:`PruneReason` — the bridge the
#: metrics-parity tests use to reconcile always-on counters with a full
#: trace of the same run.
PRUNE_METRIC_FIELDS = {
    PruneReason.MIN_H: "pruned_min_h",
    PruneReason.MIN_R: "pruned_min_r",
    PruneReason.MIN_C: "pruned_min_c",
    PruneReason.MIN_VOLUME: "pruned_min_volume",
    PruneReason.LEFT_TRACK: "pruned_left_track",
    PruneReason.MIDDLE_TRACK: "pruned_middle_track",
    PruneReason.HEIGHT_UNCLOSED: "pruned_height_unclosed",
    PruneReason.ROW_UNCLOSED: "pruned_row_unclosed",
}


def prune_counts(root: "TraceNode") -> dict[str, int]:
    """Tally a traced tree's prune reasons by metrics counter name.

    The returned dict is directly comparable with
    ``MiningMetrics.prune_counts()`` of a live run over the same
    dataset, thresholds and cutter order.
    """
    counts = {name: 0 for name in PRUNE_METRIC_FIELDS.values()}
    for node in root.iter_nodes():
        if node.pruned is not None:
            counts[PRUNE_METRIC_FIELDS[node.pruned]] += 1
    return counts


@dataclass
class TraceNode:
    """One node of the traced mining tree."""

    cube: Cube
    level: int
    branch: Branch
    cutter: Cutter | None = None
    pruned: PruneReason | None = None
    is_leaf: bool = False
    children: list["TraceNode"] = field(default_factory=list)

    def iter_nodes(self):
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def leaves(self) -> list[Cube]:
        """All FCCs in this subtree."""
        return [node.cube for node in self.iter_nodes() if node.is_leaf]


def trace_tree(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    order: HeightOrder = HeightOrder.ORIGINAL,
) -> TraceNode:
    """Run CubeMiner recording the full split tree (small datasets only).

    The default ``ORIGINAL`` cutter order matches the paper's Figure 1,
    which applies Table 3's cutters in their listed order.
    """
    l, n, m = dataset.shape
    if l * n * m > _MAX_TRACE_CELLS:
        raise ValueError(
            f"trace_tree keeps every node in memory; {l}x{n}x{m} exceeds the "
            f"{_MAX_TRACE_CELLS}-cell guard"
        )
    cutters = build_cutters(dataset, order)
    min_h, min_r, min_c = thresholds.as_tuple()
    min_volume = thresholds.min_volume
    root = TraceNode(
        cube=Cube(full_mask(l), full_mask(n), full_mask(m)),
        level=0,
        branch=Branch.ROOT,
    )

    def expand(node: TraceNode, index: int, track_left: int, track_middle: int) -> None:
        cube = node.cube
        heights, rows, columns = cube.heights, cube.rows, cube.columns
        while index < len(cutters):
            cutter = cutters[index]
            if (
                heights >> cutter.height & 1
                and rows >> cutter.row & 1
                and columns & cutter.columns
            ):
                break
            index += 1
        else:
            node.is_leaf = True
            return
        cutter = cutters[index]
        left_atom = 1 << cutter.height
        middle_atom = 1 << cutter.row
        level = index + 1

        def attach(branch: Branch, son: Cube, pruned: PruneReason | None) -> TraceNode:
            child = TraceNode(
                cube=son, level=level, branch=branch, cutter=cutter, pruned=pruned
            )
            node.children.append(child)
            return child

        son = Cube(heights & ~left_atom, rows, columns)
        if bit_count(son.heights) < min_h:
            attach(Branch.LEFT, son, PruneReason.MIN_H)
        elif son.volume < min_volume:
            attach(Branch.LEFT, son, PruneReason.MIN_VOLUME)
        elif left_atom & track_left:
            attach(Branch.LEFT, son, PruneReason.LEFT_TRACK)
        elif not row_set_closed(dataset, son.heights, rows, columns):
            attach(Branch.LEFT, son, PruneReason.ROW_UNCLOSED)
        else:
            expand(attach(Branch.LEFT, son, None), index + 1, track_left, track_middle)

        son = Cube(heights, rows & ~middle_atom, columns)
        if bit_count(son.rows) < min_r:
            attach(Branch.MIDDLE, son, PruneReason.MIN_R)
        elif son.volume < min_volume:
            attach(Branch.MIDDLE, son, PruneReason.MIN_VOLUME)
        elif middle_atom & track_middle:
            attach(Branch.MIDDLE, son, PruneReason.MIDDLE_TRACK)
        elif not height_set_closed(dataset, heights, son.rows, columns):
            attach(Branch.MIDDLE, son, PruneReason.HEIGHT_UNCLOSED)
        else:
            expand(
                attach(Branch.MIDDLE, son, None),
                index + 1,
                track_left | left_atom,
                track_middle,
            )

        son = Cube(heights, rows, columns & ~cutter.columns)
        if bit_count(son.columns) < min_c:
            attach(Branch.RIGHT, son, PruneReason.MIN_C)
        elif son.volume < min_volume:
            attach(Branch.RIGHT, son, PruneReason.MIN_VOLUME)
        elif not height_set_closed(dataset, heights, rows, son.columns):
            attach(Branch.RIGHT, son, PruneReason.HEIGHT_UNCLOSED)
        elif not row_set_closed(dataset, heights, rows, son.columns):
            attach(Branch.RIGHT, son, PruneReason.ROW_UNCLOSED)
        else:
            expand(
                attach(Branch.RIGHT, son, None),
                index + 1,
                track_left | left_atom,
                track_middle | middle_atom,
            )

    if thresholds.feasible_for_shape(dataset.shape):
        expand(root, 0, 0, 0)
    else:
        root.pruned = PruneReason.MIN_H if l < min_h else (
            PruneReason.MIN_R if n < min_r else PruneReason.MIN_C
        )
    return root


def render_tree(
    root: TraceNode,
    dataset: Dataset3D | None = None,
    *,
    show_pruned: bool = True,
) -> str:
    """Render a traced tree as indented ASCII (Figure 1 in text form)."""
    lines: list[str] = []

    def walk(node: TraceNode, depth: int) -> None:
        if node.pruned is not None and not show_pruned:
            return
        label = node.branch.value if node.branch is not Branch.ROOT else "root"
        text = node.cube.format(dataset, with_supports=False)
        suffix = ""
        if node.pruned is not None:
            suffix = f"  [pruned: {node.pruned.value}]"
        elif node.is_leaf:
            suffix = "  [FCC]"
        cutter_text = f" via ({node.cutter.format(dataset)})" if node.cutter else ""
        lines.append(f"{'  ' * depth}{label}({text}) level={node.level}{cutter_text}{suffix}")
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)
