"""Core model: datasets, cubes, closure operators, constraints, results."""

from .bitset import bit_count, full_mask, indices, mask_of
from .closure import (
    close,
    column_support,
    height_support,
    is_all_ones,
    is_closed_cube,
    row_support,
)
from .constraints import Thresholds
from .cube import Cube
from .dataset import Dataset3D
from .kernels import (
    Kernel,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel,
)
from .reference import reference_mine
from .result import MiningResult, MiningStats
from .verify import VerificationReport, Violation, verify_result

__all__ = [
    "bit_count",
    "full_mask",
    "indices",
    "mask_of",
    "close",
    "column_support",
    "height_support",
    "row_support",
    "is_all_ones",
    "is_closed_cube",
    "Thresholds",
    "Cube",
    "Dataset3D",
    "Kernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_kernel",
    "reference_mine",
    "MiningResult",
    "MiningStats",
    "VerificationReport",
    "Violation",
    "verify_result",
]
