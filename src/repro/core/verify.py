"""Result verification: trust-but-check for mining outputs.

:func:`verify_result` checks the three *soundness* properties of every
cube in a result against the dataset it claims to describe — complete
(all ones), closed (maximal on all three axes), frequent (thresholds) —
and reports each violation precisely.  On datasets small enough for the
exhaustive oracle it can also check *completeness* (no FCC missed).

Use cases: validating results loaded from JSON against the wrong or a
modified dataset, guarding pipelines that post-process cubes, and
debugging any new miner configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .closure import column_support, height_support, is_all_ones, row_support
from .constraints import Thresholds
from .cube import Cube
from .dataset import Dataset3D
from .result import MiningResult

__all__ = ["Violation", "VerificationReport", "verify_result"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One failed property of one cube."""

    cube: Cube
    kind: str  # "incomplete" | "unclosed-<axis>" | "infrequent" | "missing"
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.cube} ({self.detail})"


@dataclass
class VerificationReport:
    """Outcome of a verification run."""

    checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    completeness_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        scope = "sound+complete" if self.completeness_checked else "soundness"
        return f"verify[{scope}]: {self.checked} cube(s) checked — {status}"


def verify_result(
    dataset: Dataset3D,
    result: MiningResult,
    thresholds: Thresholds | None = None,
    *,
    check_completeness: bool = False,
) -> VerificationReport:
    """Verify every cube of ``result`` against ``dataset``.

    Parameters
    ----------
    thresholds:
        Defaults to ``result.thresholds``; required (here or there) for
        the frequency check and for completeness.
    check_completeness:
        Also run the exhaustive oracle and flag FCCs the result misses.
        Subject to the oracle's size guard — small datasets only.
    """
    if thresholds is None:
        thresholds = result.thresholds
    report = VerificationReport()
    for cube in result:
        report.checked += 1
        if cube.is_empty():
            report.violations.append(
                Violation(cube, "incomplete", "cube has an empty axis")
            )
            continue
        if not is_all_ones(dataset, cube):
            report.violations.append(
                Violation(cube, "incomplete", "covers at least one zero cell")
            )
            continue
        closures = (
            ("height", cube.heights, height_support(dataset, cube.rows, cube.columns)),
            ("row", cube.rows, row_support(dataset, cube.heights, cube.columns)),
            ("column", cube.columns, column_support(dataset, cube.heights, cube.rows)),
        )
        for axis_name, claimed, actual in closures:
            if claimed != actual:
                report.violations.append(
                    Violation(
                        cube,
                        f"unclosed-{axis_name}",
                        f"support set differs by mask {claimed ^ actual:#x}",
                    )
                )
        if thresholds is not None and not thresholds.satisfied_by(cube):
            report.violations.append(
                Violation(
                    cube,
                    "infrequent",
                    f"supports {cube.h_support}:{cube.r_support}:{cube.c_support} "
                    f"below {thresholds}",
                )
            )
    if check_completeness:
        if thresholds is None:
            raise ValueError("completeness check requires thresholds")
        from .reference import reference_mine

        truth = reference_mine(dataset, thresholds)
        for cube in truth.cube_set() - result.cube_set():
            report.violations.append(
                Violation(cube, "missing", "FCC absent from the result")
            )
        report.completeness_checked = True
    return report
