"""Three-dimensional binary datasets.

A :class:`Dataset3D` wraps an ``l x n x m`` boolean tensor
``O = H x R x C`` (heights, rows, columns — the paper's notation) and
provides the derived structures the miners need:

* per-(height, row) column bitmasks of the one-cells and zero-cells,
* axis transposition (CubeMiner's preprocessing makes the column axis
  the largest one),
* height-slice reordering (the zero-decreasing / zero-increasing
  optimization of Section 7.1.1),
* text and NPZ (de)serialization.

Cells are addressed ``data[k, i, j]`` with ``k`` a height, ``i`` a row,
``j`` a column, matching ``O_{k,i,j}`` in the paper.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Sequence
from pathlib import Path

import numpy as np

from .bitset import full_mask
from .kernels import (
    Kernel,
    PackedBufferError,
    resolve_kernel,
    tensor_from_words,
    words_per_row,
)

__all__ = ["Dataset3D", "AXIS_NAMES"]

#: Canonical axis order used throughout the library.
AXIS_NAMES = ("height", "row", "column")

_DEFAULT_PREFIX = {"height": "h", "row": "r", "column": "c"}


def _default_labels(axis: str, n: int) -> tuple[str, ...]:
    prefix = _DEFAULT_PREFIX[axis]
    return tuple(f"{prefix}{i + 1}" for i in range(n))


class Dataset3D:
    """An immutable 3D boolean context ``H x R x C``.

    Parameters
    ----------
    data:
        Anything convertible to a boolean ``numpy`` array of rank 3 with
        axis order (height, row, column).  Values must be 0/1 (or bool).
    height_labels, row_labels, column_labels:
        Optional human-readable names per index.  Defaults to the paper's
        ``h1..hl`` / ``r1..rn`` / ``c1..cm`` convention.
    kernel:
        The bitset backend executing this dataset's batch operations: a
        :class:`~repro.core.kernels.Kernel`, a registered name, or
        ``None`` for the ``REPRO_KERNEL`` / default selection (resolved
        lazily, see :mod:`repro.core.kernels`).  The kernel never
        affects results — only how the closure operators are computed —
        so equality and hashing ignore it.
    """

    __slots__ = (
        "_data",
        "_shape",
        "_height_labels",
        "_row_labels",
        "_column_labels",
        "_ones_masks",
        "_zeros_masks",
        "_kernel_spec",
        "_kernel",
        "_ones_grid",
    )

    def __init__(
        self,
        data: Sequence | np.ndarray,
        *,
        height_labels: Sequence[str] | None = None,
        row_labels: Sequence[str] | None = None,
        column_labels: Sequence[str] | None = None,
        kernel: str | Kernel | None = None,
    ) -> None:
        array = np.asarray(data)
        if array.ndim != 3:
            raise ValueError(f"expected a rank-3 tensor, got rank {array.ndim}")
        if array.dtype != np.bool_:
            unique = np.unique(array)
            if not np.isin(unique, (0, 1)).all():
                raise ValueError(
                    "dataset cells must be boolean or 0/1, found values "
                    f"{unique[:10].tolist()}"
                )
            array = array.astype(bool)
        self._data = array
        self._data.setflags(write=False)
        self._shape = tuple(int(d) for d in array.shape)
        l, n, m = array.shape
        self._height_labels = self._check_labels("height", height_labels, l)
        self._row_labels = self._check_labels("row", row_labels, n)
        self._column_labels = self._check_labels("column", column_labels, m)
        self._ones_masks: list[list[int]] | None = None
        self._zeros_masks: list[list[int]] | None = None
        self._kernel_spec = kernel
        self._kernel: Kernel | None = None
        self._ones_grid = None

    @staticmethod
    def _check_labels(
        axis: str, labels: Sequence[str] | None, expected: int
    ) -> tuple[str, ...]:
        if labels is None:
            return _default_labels(axis, expected)
        labels = tuple(str(label) for label in labels)
        if len(labels) != expected:
            raise ValueError(
                f"{axis} labels have length {len(labels)}, expected {expected}"
            )
        if len(set(labels)) != len(labels):
            raise ValueError(f"{axis} labels must be unique")
        return labels

    # ------------------------------------------------------------------
    # Basic shape / access
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying read-only boolean array of shape ``(l, n, m)``.

        Datasets built over a packed word grid
        (:meth:`from_packed_grid`, e.g. zero-copy shared-memory views)
        materialize the tensor lazily on first access.
        """
        if self._data is None:
            tensor = tensor_from_words(np.asarray(self._ones_grid), self._shape)
            tensor.setflags(write=False)
            self._data = tensor
        return self._data

    @property
    def shape(self) -> tuple[int, int, int]:
        """``(n_heights, n_rows, n_columns)``."""
        return self._shape  # type: ignore[return-value]

    @property
    def n_heights(self) -> int:
        return self._shape[0]

    @property
    def n_rows(self) -> int:
        return self._shape[1]

    @property
    def n_columns(self) -> int:
        return self._shape[2]

    @property
    def height_labels(self) -> tuple[str, ...]:
        return self._height_labels

    @property
    def row_labels(self) -> tuple[str, ...]:
        return self._row_labels

    @property
    def column_labels(self) -> tuple[str, ...]:
        return self._column_labels

    def labels_for_axis(self, axis: int | str) -> tuple[str, ...]:
        """Return the labels along ``axis`` (index or name)."""
        index = self._axis_index(axis)
        return (self._height_labels, self._row_labels, self._column_labels)[index]

    @staticmethod
    def _axis_index(axis: int | str) -> int:
        if isinstance(axis, str):
            try:
                return AXIS_NAMES.index(axis)
            except ValueError:
                raise ValueError(
                    f"unknown axis {axis!r}, expected one of {AXIS_NAMES}"
                ) from None
        if axis not in (0, 1, 2):
            raise ValueError(f"axis index must be 0, 1 or 2, got {axis}")
        return axis

    def cell(self, k: int, i: int, j: int) -> bool:
        """Return ``O[k, i, j]``."""
        return bool(self.data[k, i, j])

    @property
    def density(self) -> float:
        """Fraction of one-cells in the tensor (0.0 for an empty tensor)."""
        if self.data.size == 0:
            return 0.0
        return float(self.data.mean())

    def count_ones(self) -> int:
        """Total number of one-cells."""
        return int(self.data.sum())

    def zeros_in_height(self, k: int) -> int:
        """Number of zero-cells in height slice ``k`` (used for ordering)."""
        sl = self.data[k]
        return int(sl.size - sl.sum())

    # ------------------------------------------------------------------
    # Bitmask views (the miners' working representation)
    # ------------------------------------------------------------------
    def _build_masks(self) -> None:
        l, n, m = self.shape
        universe = full_mask(m)
        ones: list[list[int]] = []
        zeros: list[list[int]] = []
        for k in range(l):
            ones_k: list[int] = []
            zeros_k: list[int] = []
            slice_k = self.data[k]
            for i in range(n):
                # Pack the boolean row into an int with bit j == O[k,i,j].
                packed = np.packbits(slice_k[i], bitorder="little").tobytes()
                mask = int.from_bytes(packed, "little")
                ones_k.append(mask)
                zeros_k.append(universe & ~mask)
            ones.append(ones_k)
            zeros.append(zeros_k)
        self._ones_masks = ones
        self._zeros_masks = zeros

    def ones_mask(self, k: int, i: int) -> int:
        """Column bitmask of the one-cells in row ``i`` of height ``k``."""
        if self._ones_masks is None:
            self._build_masks()
        return self._ones_masks[k][i]  # type: ignore[index]

    def zeros_mask(self, k: int, i: int) -> int:
        """Column bitmask of the zero-cells in row ``i`` of height ``k``."""
        if self._zeros_masks is None:
            self._build_masks()
        return self._zeros_masks[k][i]  # type: ignore[index]

    def ones_masks(self) -> list[list[int]]:
        """All one-cell masks, indexed ``[k][i]``."""
        if self._ones_masks is None:
            self._build_masks()
        return [list(per_height) for per_height in self._ones_masks]  # type: ignore[union-attr]

    def slice_row_masks(self, k: int) -> list[int]:
        """One-cell masks for every row of height slice ``k``."""
        if self._ones_masks is None:
            self._build_masks()
        return list(self._ones_masks[k])  # type: ignore[index]

    # ------------------------------------------------------------------
    # Kernel backend
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        """The bitset backend serving this dataset (resolved lazily)."""
        if self._kernel is None:
            self._kernel = resolve_kernel(self._kernel_spec)
        return self._kernel

    def with_kernel(self, kernel: str | Kernel | None) -> "Dataset3D":
        """Return a view of this dataset bound to another kernel.

        The tensor, labels and int-mask caches are shared (all are
        immutable); only the kernel-native grid cache is rebuilt.
        """
        if kernel is not None and resolve_kernel(kernel) is self.kernel:
            return self
        clone = Dataset3D.__new__(Dataset3D)
        # A lazy (packed-grid) dataset has no tensor to rebuild the new
        # kernel's grid from — materialize before dropping the old grid.
        clone._data = self.data if self._data is None else self._data
        clone._shape = self._shape
        clone._height_labels = self._height_labels
        clone._row_labels = self._row_labels
        clone._column_labels = self._column_labels
        clone._ones_masks = self._ones_masks
        clone._zeros_masks = self._zeros_masks
        clone._kernel_spec = kernel
        clone._kernel = None
        clone._ones_grid = None
        return clone

    def ones_grid(self):
        """Kernel-native handle for the full (height, row) ones-mask grid.

        This is what the closure operators, CubeMiner's closure checks
        and RSM's slice folding run their batch operations against;
        built once per (dataset, kernel) pair.
        """
        if self._ones_grid is None:
            if self._ones_masks is not None:
                self._ones_grid = self.kernel.pack_grid(
                    self._ones_masks, self.n_columns
                )
            else:
                self._ones_grid = self.kernel.pack_grid_from_tensor(self.data)
        return self._ones_grid

    # ------------------------------------------------------------------
    # Rearrangement
    # ------------------------------------------------------------------
    def transpose(self, order: tuple[int, int, int] | tuple[str, str, str]) -> "Dataset3D":
        """Return a new dataset with axes permuted.

        ``order`` gives, for each new axis position, the current axis that
        should land there — e.g. ``("row", "height", "column")`` swaps the
        height and row axes.
        """
        perm = tuple(self._axis_index(axis) for axis in order)
        if sorted(perm) != [0, 1, 2]:
            raise ValueError(f"order {order!r} is not a permutation of the 3 axes")
        labels = [self.labels_for_axis(axis) for axis in perm]
        return Dataset3D(
            np.transpose(self.data, perm).copy(),
            height_labels=labels[0],
            row_labels=labels[1],
            column_labels=labels[2],
            kernel=self._kernel_spec,
        )

    def canonical_transpose(self) -> "Dataset3D":
        """Permute axes so that ``|H| <= |R| <= |C|``.

        This is CubeMiner's first preprocessing heuristic (Section 5.2):
        making the column axis the largest dimension minimizes the number
        of cutters (one per (height, row) pair with zeros).
        """
        sizes = self.shape
        perm = tuple(int(axis) for axis in np.argsort(sizes, kind="stable"))
        if perm == (0, 1, 2):
            return self
        return self.transpose(perm)  # type: ignore[arg-type]

    def reorder_heights(self, order: Sequence[int]) -> "Dataset3D":
        """Return a new dataset with height slices permuted by ``order``."""
        if sorted(order) != list(range(self.n_heights)):
            raise ValueError(
                f"height order must be a permutation of 0..{self.n_heights - 1}"
            )
        labels = tuple(self._height_labels[k] for k in order)
        return Dataset3D(
            self.data[list(order)].copy(),
            height_labels=labels,
            row_labels=self._row_labels,
            column_labels=self._column_labels,
            kernel=self._kernel_spec,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_cells(
        cls,
        shape: tuple[int, int, int],
        one_cells: Iterable[tuple[int, int, int]],
        **label_kwargs,
    ) -> "Dataset3D":
        """Build a dataset from its shape and the coordinates of one-cells."""
        array = np.zeros(shape, dtype=bool)
        for k, i, j in one_cells:
            array[k, i, j] = True
        return cls(array, **label_kwargs)

    @classmethod
    def from_slices(cls, slices: Sequence[Sequence[Sequence[int]]], **label_kwargs) -> "Dataset3D":
        """Build a dataset from nested lists ``[height][row][column]``."""
        return cls(np.asarray(slices), **label_kwargs)

    @classmethod
    def from_packed_grid(
        cls,
        words: np.ndarray,
        shape: tuple[int, int, int],
        *,
        kernel: str | Kernel | None = None,
        height_labels: Sequence[str] | None = None,
        row_labels: Sequence[str] | None = None,
        column_labels: Sequence[str] | None = None,
        validate: bool = True,
    ) -> "Dataset3D":
        """Build a dataset over an ``(l, n, words)`` packed uint64 grid.

        ``words`` must use the canonical little-endian layout of
        :func:`repro.core.kernels.words_from_tensor`.  On a words-native
        kernel (``numpy``) the array *becomes* the dataset's ones-grid
        without copying — this is how shared-memory attachment stays
        zero-copy; the boolean tensor materializes lazily only if some
        caller asks for :attr:`data`.  Other kernels unpack a tensor
        copy up front.  The grid is validated against ``shape``
        (:class:`~repro.core.kernels.PackedBufferError` on mismatch), so
        a corrupted buffer cannot silently yield garbage cubes.
        ``validate=False`` skips only the stray-tail-bit scan — for
        callers that already validated the buffer chunk-by-chunk (the
        memory-mapped open path, where one whole-array scan would fault
        every page in at once); dtype and shape are always checked.
        """
        l, n, m = (int(d) for d in shape)
        if min(l, n, m) < 0:
            raise ValueError(f"shape {shape!r} has negative dimensions")
        arr = np.asarray(words)
        expected = (l, n, words_per_row(m))
        if arr.dtype != np.dtype("<u8") or arr.ndim != 3:
            raise PackedBufferError(
                f"packed grid must be a rank-3 little-endian uint64 array, "
                f"got rank {arr.ndim} {arr.dtype}"
            )
        if arr.shape != expected:
            raise PackedBufferError(
                f"packed grid has shape {arr.shape}, expected {expected} "
                f"for a dataset of shape {(l, n, m)}"
            )
        tail_bits = m % 64
        if validate and arr.size and tail_bits:
            allowed = np.uint64((1 << tail_bits) - 1)
            if (arr[..., -1] & ~allowed).any():
                raise PackedBufferError(
                    f"packed grid carries stray bits beyond column {m}"
                )
        resolved = resolve_kernel(kernel)
        if not resolved.words_native:
            return cls(
                tensor_from_words(arr, (l, n, m)),
                height_labels=height_labels,
                row_labels=row_labels,
                column_labels=column_labels,
                kernel=kernel,
            )
        grid = arr.view()
        grid.setflags(write=False)
        ds = cls.__new__(cls)
        ds._data = None
        ds._shape = (l, n, m)
        ds._height_labels = cls._check_labels("height", height_labels, l)
        ds._row_labels = cls._check_labels("row", row_labels, n)
        ds._column_labels = cls._check_labels("column", column_labels, m)
        ds._ones_masks = None
        ds._zeros_masks = None
        ds._kernel_spec = kernel
        ds._kernel = resolved
        ds._ones_grid = grid
        return ds

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Serialize to the library's dense text format.

        Line 1 holds ``l n m``; then each height slice is ``n`` lines of
        ``m`` space-separated 0/1 values, slices separated by blank lines.
        """
        out = io.StringIO()
        l, n, m = self.shape
        out.write(f"{l} {n} {m}\n")
        for k in range(l):
            for i in range(n):
                out.write(" ".join("1" if v else "0" for v in self.data[k, i]))
                out.write("\n")
            out.write("\n")
        return out.getvalue()

    @classmethod
    def from_text(cls, text: str, **label_kwargs) -> "Dataset3D":
        """Parse the dense text format produced by :meth:`to_text`."""
        tokens = text.split()
        if len(tokens) < 3:
            raise ValueError("dense text must start with 'l n m' header")
        l, n, m = (int(tokens[i]) for i in range(3))
        values = tokens[3:]
        if len(values) != l * n * m:
            raise ValueError(
                f"dense text body holds {len(values)} cells, expected {l * n * m}"
            )
        array = np.array([int(v) for v in values], dtype=np.int8).reshape(l, n, m)
        return cls(array, **label_kwargs)

    def save_npz(self, path: str | Path) -> None:
        """Save the tensor and labels to a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            data=self.data,
            height_labels=np.array(self._height_labels),
            row_labels=np.array(self._row_labels),
            column_labels=np.array(self._column_labels),
        )

    @classmethod
    def load_npz(cls, path: str | Path) -> "Dataset3D":
        """Load a dataset previously written by :meth:`save_npz`."""
        with np.load(Path(path), allow_pickle=False) as archive:
            return cls(
                archive["data"],
                height_labels=[str(s) for s in archive["height_labels"]],
                row_labels=[str(s) for s in archive["row_labels"]],
                column_labels=[str(s) for s in archive["column_labels"]],
            )

    @classmethod
    def open_mmap(
        cls,
        path: str | Path,
        shape: tuple[int, int, int],
        *,
        kernel: str | Kernel | None = None,
        height_labels: Sequence[str] | None = None,
        row_labels: Sequence[str] | None = None,
        column_labels: Sequence[str] | None = None,
    ) -> "Dataset3D":
        """Open a packed ``(l, n, words)`` ``.npy`` grid memory-mapped.

        The file must hold the canonical little-endian word layout of
        :func:`repro.core.kernels.words_from_tensor` (what
        :class:`repro.stream.MmapDatasetStore` writes).  On a
        words-native kernel the mapping *becomes* the dataset's
        ones-grid without copying: slices fault in from disk as the
        miners touch them and can be dropped again
        (:func:`repro.core.kernels.release_mapped_pages`), which is
        what lets RSM mine tensors whose packed size exceeds RAM.
        Other kernels unpack an in-memory tensor copy — correct, but
        without the out-of-core benefit.

        Validation runs height-slice by height-slice with the pages of
        each slice released after checking, so opening never makes the
        whole file resident at once.
        """
        from .kernels import release_mapped_pages

        l, n, m = (int(d) for d in shape)
        words = np.load(Path(path), mmap_mode="r", allow_pickle=False)
        tail_bits = m % 64
        prevalidated = False
        if (
            words.ndim == 3
            and words.dtype == np.dtype("<u8")
            and words.shape == (l, n, words_per_row(m))
        ):
            if words.size and tail_bits:
                allowed = np.uint64((1 << tail_bits) - 1)
                for k in range(l):
                    stray = bool((words[k, :, -1] & ~allowed).any())
                    release_mapped_pages(words)
                    if stray:
                        raise PackedBufferError(
                            f"packed grid carries stray bits beyond column {m}"
                        )
            prevalidated = True
        return cls.from_packed_grid(
            words,
            (l, n, m),
            kernel=kernel,
            height_labels=height_labels,
            row_labels=row_labels,
            column_labels=column_labels,
            validate=not prevalidated,
        )

    # ------------------------------------------------------------------
    # Pickling (parallel workers receive datasets through this)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The bitmask caches can dwarf the tensor itself; workers rebuild
        # them lazily, so only the tensor, labels and kernel name travel.
        spec = self._kernel_spec
        return {
            "data": self.data,
            "height_labels": self._height_labels,
            "row_labels": self._row_labels,
            "column_labels": self._column_labels,
            "kernel": spec.name if isinstance(spec, Kernel) else spec,
        }

    def __setstate__(self, state: dict) -> None:
        data = state["data"]
        data.setflags(write=False)
        self._data = data
        self._shape = tuple(int(d) for d in data.shape)
        self._height_labels = state["height_labels"]
        self._row_labels = state["row_labels"]
        self._column_labels = state["column_labels"]
        self._ones_masks = None
        self._zeros_masks = None
        self._kernel_spec = state.get("kernel")
        self._kernel = None
        self._ones_grid = None

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset3D):
            return NotImplemented
        return (
            self.shape == other.shape
            and bool(np.array_equal(self.data, other.data))
            and self._height_labels == other._height_labels
            and self._row_labels == other._row_labels
            and self._column_labels == other._column_labels
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.data.tobytes()))

    def __repr__(self) -> str:
        l, n, m = self.shape
        return (
            f"Dataset3D(shape={l}x{n}x{m}, density={self.density:.3f})"
        )
