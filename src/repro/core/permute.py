"""Axis-permutation helpers shared by RSM and the top-level API.

An axis ``order`` is a tuple where ``order[new_axis] == old_axis``,
matching :meth:`repro.core.dataset.Dataset3D.transpose`.  Mining on a
transposed tensor yields cubes in the transposed index space; these
helpers map them back.
"""

from __future__ import annotations

from .cube import Cube

__all__ = ["inverse_order", "map_cube_from_transposed", "order_moving_axis_first"]


def inverse_order(order: tuple[int, int, int]) -> tuple[int, int, int]:
    """Return ``inv`` with ``inv[old_axis] == new_axis``."""
    if sorted(order) != [0, 1, 2]:
        raise ValueError(f"order {order!r} is not a permutation of the 3 axes")
    inv = [0, 0, 0]
    for new_axis, old_axis in enumerate(order):
        inv[old_axis] = new_axis
    return tuple(inv)  # type: ignore[return-value]


def map_cube_from_transposed(cube: Cube, order: tuple[int, int, int]) -> Cube:
    """Map a cube found in a transposed dataset back to original axes."""
    inv = inverse_order(order)
    masks = (cube.heights, cube.rows, cube.columns)
    return Cube(masks[inv[0]], masks[inv[1]], masks[inv[2]])


def order_moving_axis_first(axis: int) -> tuple[int, int, int]:
    """An order that brings ``axis`` to position 0, others in place."""
    if axis == 0:
        return (0, 1, 2)
    if axis == 1:
        return (1, 0, 2)
    if axis == 2:
        return (2, 0, 1)
    raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
