"""The cube value object.

A :class:`Cube` is an index-level triple of bitmasks ``(heights, rows,
columns)`` identifying the sub-tensor ``H' x R' x C'`` of a dataset.  It
is deliberately dataset-agnostic: the same object can describe a pattern
in any tensor of compatible shape, and rendering with labels is done via
:meth:`Cube.format` against a concrete :class:`~repro.core.dataset.Dataset3D`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bitset import bit_count, indices, is_subset
from .dataset import Dataset3D

__all__ = ["Cube"]


@dataclass(frozen=True, slots=True)
class Cube:
    """A sub-cube ``(H', R', C')`` encoded as three bitmasks."""

    heights: int
    rows: int
    columns: int

    def __post_init__(self) -> None:
        if self.heights < 0 or self.rows < 0 or self.columns < 0:
            raise ValueError("cube masks must be non-negative integers")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_indices(
        cls,
        heights: tuple[int, ...] | list[int] | set[int],
        rows: tuple[int, ...] | list[int] | set[int],
        columns: tuple[int, ...] | list[int] | set[int],
    ) -> "Cube":
        """Build a cube from explicit index collections."""
        from .bitset import mask_of

        return cls(mask_of(heights), mask_of(rows), mask_of(columns))

    @classmethod
    def from_labels(
        cls,
        dataset: Dataset3D,
        heights: str | list[str],
        rows: str | list[str],
        columns: str | list[str],
    ) -> "Cube":
        """Build a cube from axis labels.

        Each argument is either a list of labels or a single
        space-separated string, e.g. ``Cube.from_labels(ds, "h1 h3",
        "r1 r2 r3", "c1 c2 c3")``.
        """

        def resolve(labels: str | list[str], universe: tuple[str, ...]) -> int:
            if isinstance(labels, str):
                labels = labels.split()
            mask = 0
            for label in labels:
                try:
                    mask |= 1 << universe.index(label)
                except ValueError:
                    raise KeyError(f"unknown label {label!r}") from None
            return mask

        return cls(
            resolve(heights, dataset.height_labels),
            resolve(rows, dataset.row_labels),
            resolve(columns, dataset.column_labels),
        )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def h_support(self) -> int:
        """Number of heights — ``|H'|``, the paper's H-Support."""
        return bit_count(self.heights)

    @property
    def r_support(self) -> int:
        """Number of rows — ``|R'|``, the paper's R-Support."""
        return bit_count(self.rows)

    @property
    def c_support(self) -> int:
        """Number of columns — ``|C'|``, the paper's C-Support."""
        return bit_count(self.columns)

    @property
    def volume(self) -> int:
        """Number of cells covered by the cube."""
        return self.h_support * self.r_support * self.c_support

    def is_empty(self) -> bool:
        """True when any dimension set is empty."""
        return self.heights == 0 or self.rows == 0 or self.columns == 0

    # ------------------------------------------------------------------
    # Set relations
    # ------------------------------------------------------------------
    def satisfies(self, thresholds) -> bool:
        """True when the cube meets every minimum of ``thresholds``.

        The dual of :meth:`Thresholds.satisfied_by
        <repro.core.constraints.Thresholds.satisfied_by>`, phrased from
        the cube's side — the filtering primitive of the
        threshold-lattice result cache: a result mined at loose
        thresholds answers a tighter query by keeping exactly the cubes
        for which ``cube.satisfies(tight)`` holds.
        """
        return (
            self.h_support >= thresholds.min_h
            and self.r_support >= thresholds.min_r
            and self.c_support >= thresholds.min_c
            and self.volume >= thresholds.min_volume
        )

    def contains(self, other: "Cube") -> bool:
        """True when ``other`` is a sub-cube of this one (all three axes)."""
        return (
            is_subset(other.heights, self.heights)
            and is_subset(other.rows, self.rows)
            and is_subset(other.columns, self.columns)
        )

    def height_indices(self) -> tuple[int, ...]:
        return indices(self.heights)

    def row_indices(self) -> tuple[int, ...]:
        return indices(self.rows)

    def column_indices(self) -> tuple[int, ...]:
        return indices(self.columns)

    # ------------------------------------------------------------------
    # Ordering & rendering
    # ------------------------------------------------------------------
    def sort_key(self) -> tuple[int, int, int]:
        """A canonical total order used to stabilize result listings."""
        return (self.heights, self.rows, self.columns)

    def format(self, dataset: Dataset3D | None = None, *, with_supports: bool = True) -> str:
        """Render the cube in the paper's notation.

        With a dataset, labels are used: ``h1h3 : r1r2r3 : c1c2c3, 2:3:3``.
        Without one, indices are rendered 1-based to match the paper.
        """
        if dataset is not None:
            hs = "".join(dataset.height_labels[i] for i in self.height_indices())
            rs = "".join(dataset.row_labels[i] for i in self.row_indices())
            cs = "".join(dataset.column_labels[i] for i in self.column_indices())
        else:
            hs = "".join(f"h{i + 1}" for i in self.height_indices())
            rs = "".join(f"r{i + 1}" for i in self.row_indices())
            cs = "".join(f"c{i + 1}" for i in self.column_indices())
        text = f"{hs} : {rs} : {cs}"
        if with_supports:
            text += f", {self.h_support}:{self.r_support}:{self.c_support}"
        return text

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return (
            f"Cube(heights={self.height_indices()}, rows={self.row_indices()}, "
            f"columns={self.column_indices()})"
        )
