"""The default kernel: arbitrary-precision Python ints.

This backend wraps the free functions of :mod:`repro.core.bitset`
unchanged — handles are plain lists of ints and every batch operation
is the same early-terminating loop the miners ran before the kernel
layer existed, so it is the behavioural and performance baseline that
the differential suite pins every other backend against.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..bitset import bit_count, full_mask, is_subset, iter_bits
from .base import Kernel

__all__ = ["PythonIntKernel"]


class PythonIntKernel(Kernel):
    """Batch operations as loops over int masks (the historical code)."""

    name = "python-int"

    # ------------------------------------------------------------------
    # Mask arrays
    # ------------------------------------------------------------------
    def pack_masks(self, masks: Sequence[int], n_bits: int) -> list[int]:
        return list(masks)

    def unpack_masks(self, handle: list[int]) -> list[int]:
        return list(handle)

    def fold_and(self, handle: list[int], n_bits: int, select: int | None = None) -> int:
        acc = full_mask(n_bits)
        if select is None:
            for mask in handle:
                acc &= mask
                if acc == 0:
                    return 0
            return acc
        for i in iter_bits(select):
            acc &= handle[i]
            if acc == 0:
                return 0
        return acc

    def fold_or(self, handle: list[int], n_bits: int, select: int | None = None) -> int:
        acc = 0
        if select is None:
            for mask in handle:
                acc |= mask
            return acc
        for i in iter_bits(select):
            acc |= handle[i]
        return acc

    def popcounts(self, handle: list[int]) -> list[int]:
        return [bit_count(mask) for mask in handle]

    def supersets_of(self, handle: list[int], sub: int) -> int:
        result = 0
        for i, mask in enumerate(handle):
            if sub & ~mask == 0:
                result |= 1 << i
        return result

    # ------------------------------------------------------------------
    # Batched primitives
    # ------------------------------------------------------------------
    def and_many(self, handle_a: list[int], handle_b: list[int], n_bits: int) -> list[int]:
        if len(handle_a) != len(handle_b):
            raise ValueError(
                f"and_many needs equal-length mask arrays, "
                f"got {len(handle_a)} and {len(handle_b)}"
            )
        return [a & b for a, b in zip(handle_a, handle_b)]

    def intersect_rows(self, grid: list[list[int]], heights: int, n_bits: int) -> list[int]:
        # grid_fold_rows already returns a fresh int list — the handle.
        return self.grid_fold_rows(grid, heights, n_bits)

    def grid_slice_rows(self, grid: list[list[int]], height: int, n_bits: int) -> list[int]:
        return list(grid[height])

    # ------------------------------------------------------------------
    # Grids
    # ------------------------------------------------------------------
    def pack_grid(self, masks: Sequence[Sequence[int]], n_bits: int) -> list[list[int]]:
        return [list(per_height) for per_height in masks]

    def grid_fold_and(self, grid: list[list[int]], heights: int, rows: int, n_bits: int) -> int:
        acc = full_mask(n_bits)
        for k in iter_bits(heights):
            per_height = grid[k]
            for i in iter_bits(rows):
                acc &= per_height[i]
                if acc == 0:
                    return 0
        return acc

    def grid_fold_rows(self, grid: list[list[int]], heights: int, n_bits: int) -> list[int]:
        member_iter = iter_bits(heights)
        first = next(member_iter, None)
        if first is None:
            n_rows = len(grid[0]) if grid else 0
            return [full_mask(n_bits)] * n_rows
        masks = list(grid[first])
        for k in member_iter:
            per_height = grid[k]
            for i, mask in enumerate(per_height):
                masks[i] &= mask
        return masks

    def grid_supporting_heights(
        self,
        grid: list[list[int]],
        rows: int,
        columns: int,
        candidates: int | None = None,
    ) -> int:
        height_iter = (
            range(len(grid)) if candidates is None else iter_bits(candidates)
        )
        result = 0
        for k in height_iter:
            per_height = grid[k]
            for i in iter_bits(rows):
                if not is_subset(columns, per_height[i]):
                    break
            else:
                result |= 1 << k
        return result

    def grid_supporting_rows(
        self,
        grid: list[list[int]],
        heights: int,
        columns: int,
        candidates: int | None = None,
    ) -> int:
        n_rows = len(grid[0]) if grid else 0
        row_iter = range(n_rows) if candidates is None else iter_bits(candidates)
        result = 0
        for i in row_iter:
            for k in iter_bits(heights):
                if not is_subset(columns, grid[k][i]):
                    break
            else:
                result |= 1 << i
        return result

    # ------------------------------------------------------------------
    # Cutters
    # ------------------------------------------------------------------
    def pack_cutters(
        self,
        heights: Sequence[int],
        rows: Sequence[int],
        columns: Sequence[int],
        shape: tuple[int, int, int],
    ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        return tuple(heights), tuple(rows), tuple(columns)

    def first_applicable_cutter(
        self, handle: Any, heights: int, rows: int, columns: int, start: int
    ) -> int:
        cutter_heights, cutter_rows, cutter_columns = handle
        n_cutters = len(cutter_heights)
        index = start
        while index < n_cutters:
            if (
                heights >> cutter_heights[index] & 1
                and rows >> cutter_rows[index] & 1
                and columns & cutter_columns[index]
            ):
                return index
            index += 1
        return n_cutters
