"""Native C kernel on the packed-uint64 layout.

:class:`NativeKernel` shares the :class:`~repro.core.kernels.numpy_kernel.NumpyKernel`
handle formats bit for bit — mask arrays are ``(k, words)`` and grids
``(l, n, words)`` little-endian uint64 arrays — so packing, pickling,
shared-memory attachment and memory-mapped stores all reuse the numpy
plumbing unchanged (``words_native`` stays true: an shm or mmap word
buffer *is* the handle, zero-copy).  What changes is who does the batch
work: every fold, support scan, popcount and cutter scan dispatches to
the ``_native`` C extension, which walks the buffers directly — no
selector unpacking, no gather copies, early exits on zero accumulators
and failed subset tests.

The extension is optional.  ``setup.py`` builds it when a C compiler is
present (``-O3``; ``__builtin_popcountll`` and optional AVX2 paths are
resolved at compile time — see ``_native.c``); when the import probe
fails, :func:`native_available` turns false, the registry leaves the
``native`` name unregistered, and kernel resolution degrades to
``numpy`` (see :mod:`repro.core.kernels`).  Instantiating
:class:`NativeKernel` without the extension raises
:class:`~repro.core.kernels.base.KernelUnavailableError`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..bitset import full_mask
from .base import KernelUnavailableError, words_per_row
from .numpy_kernel import NumpyKernel, _pack_int, _unpack_int

__all__ = [
    "NativeKernel",
    "native_available",
    "native_import_error",
    "native_features",
]

try:
    from . import _native
except ImportError as exc:  # extension not built on this interpreter
    _native = None  # type: ignore[assignment]
    _IMPORT_ERROR: str | None = str(exc)
else:
    _IMPORT_ERROR = None

_WORD_DTYPE = np.dtype("<u8")


def native_available() -> bool:
    """True when the ``_native`` C extension imported successfully."""
    return _native is not None


def native_import_error() -> str | None:
    """The import failure that disabled the native backend, if any."""
    return None if _native is not None else _IMPORT_ERROR


def native_features() -> dict:
    """Compile-time feature flags of the built extension.

    ``{"popcount": ..., "simd": ..., "big_endian": ...}``; raises
    :class:`KernelUnavailableError` when the extension is not built.
    """
    if _native is None:
        raise KernelUnavailableError("native", _IMPORT_ERROR or "not built")
    return _native.features()


def _contiguous(arr: np.ndarray) -> np.ndarray:
    """The array itself, or a C-contiguous copy when it is a strided view."""
    if arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr)


def _select_bytes(select: int, count: int) -> bytes:
    """An index bitmask as a packed little-endian word buffer."""
    return select.to_bytes(words_per_row(count) * 8, "little")


class NativeKernel(NumpyKernel):
    """Batch bitset operations executed by the ``_native`` C extension.

    Subclasses :class:`NumpyKernel` for the representation layer
    (packing, validation, zero-copy adoption of packed word buffers)
    and overrides every batch operation with a C call.
    """

    name = "native"
    words_native = True

    def __init__(self) -> None:
        if _native is None:
            raise KernelUnavailableError("native", _IMPORT_ERROR or "not built")

    # ------------------------------------------------------------------
    # Mask arrays
    # ------------------------------------------------------------------
    def fold_and(self, handle: np.ndarray, n_bits: int, select: int | None = None) -> int:
        k, words = handle.shape
        if k == 0 or select == 0:
            return full_mask(n_bits)
        out = np.empty(words, dtype=_WORD_DTYPE)
        _native.fold_and(
            _contiguous(handle), k, words,
            None if select is None else _select_bytes(select, k), out,
        )
        return _unpack_int(out)

    def fold_or(self, handle: np.ndarray, n_bits: int, select: int | None = None) -> int:
        k, words = handle.shape
        if k == 0 or select == 0:
            return 0
        out = np.empty(words, dtype=_WORD_DTYPE)
        _native.fold_or(
            _contiguous(handle), k, words,
            None if select is None else _select_bytes(select, k), out,
        )
        return _unpack_int(out)

    def popcounts(self, handle: np.ndarray) -> list[int]:
        k, words = handle.shape
        return _native.popcounts(_contiguous(handle), k, words)

    def supersets_of(self, handle: np.ndarray, sub: int) -> int:
        k, words = handle.shape
        if k == 0:
            return 0
        out = np.empty(words_per_row(k), dtype=_WORD_DTYPE)
        _native.supersets_of(
            _contiguous(handle), k, words, _pack_int(sub, words), out
        )
        return _unpack_int(out)

    # ------------------------------------------------------------------
    # Batched primitives
    # ------------------------------------------------------------------
    def and_many(self, handle_a: np.ndarray, handle_b: np.ndarray, n_bits: int) -> np.ndarray:
        if handle_a.shape != handle_b.shape:
            raise ValueError(
                f"and_many needs equal-shape mask arrays, "
                f"got {handle_a.shape} and {handle_b.shape}"
            )
        out = np.empty(handle_a.shape, dtype=_WORD_DTYPE)
        _native.and_many(
            _contiguous(handle_a), _contiguous(handle_b), out, handle_a.size
        )
        return out

    def popcount_many(self, masks: Sequence[int], n_bits: int) -> list[int]:
        if not masks:
            return []
        packed = self.pack_masks(masks, n_bits)
        return _native.popcounts(packed, *packed.shape)

    def intersect_rows(self, grid: np.ndarray, heights: int, n_bits: int) -> np.ndarray:
        l, n, words = grid.shape
        out = np.empty((n, words), dtype=_WORD_DTYPE)
        if heights == 0:
            out[:] = _pack_int(full_mask(n_bits), words)
            return out
        _native.grid_fold_rows(
            _contiguous(grid), l, n, words, _select_bytes(heights, l), out
        )
        return out

    # ------------------------------------------------------------------
    # Grids
    # ------------------------------------------------------------------
    def grid_fold_and(self, grid: np.ndarray, heights: int, rows: int, n_bits: int) -> int:
        if heights == 0 or rows == 0:
            return full_mask(n_bits)
        l, n, words = grid.shape
        out = np.empty(words, dtype=_WORD_DTYPE)
        out[:] = _pack_int(full_mask(n_bits), words)
        _native.grid_fold_and(
            _contiguous(grid), l, n, words,
            _select_bytes(heights, l), _select_bytes(rows, n), out,
        )
        return _unpack_int(out)

    def grid_fold_rows(self, grid: np.ndarray, heights: int, n_bits: int) -> list[int]:
        folded = self.intersect_rows(grid, heights, n_bits)
        return [_unpack_int(folded[i]) for i in range(folded.shape[0])]

    def grid_supporting_heights(
        self, grid: np.ndarray, rows: int, columns: int, candidates: int | None = None
    ) -> int:
        l, n, words = grid.shape
        if candidates is None:
            candidates = full_mask(l)
        if candidates == 0:
            return 0
        if rows == 0:
            return candidates
        out = np.empty(words_per_row(l), dtype=_WORD_DTYPE)
        _native.grid_supporting_heights(
            _contiguous(grid), l, n, words,
            _select_bytes(rows, n), _pack_int(columns, words),
            _select_bytes(candidates, l), out,
        )
        return _unpack_int(out)

    def grid_supporting_rows(
        self, grid: np.ndarray, heights: int, columns: int, candidates: int | None = None
    ) -> int:
        l, n, words = grid.shape
        if candidates is None:
            candidates = full_mask(n)
        if candidates == 0:
            return 0
        if heights == 0:
            return candidates
        out = np.empty(words_per_row(n), dtype=_WORD_DTYPE)
        _native.grid_supporting_rows(
            _contiguous(grid), l, n, words,
            _select_bytes(heights, l), _pack_int(columns, words),
            _select_bytes(candidates, n), out,
        )
        return _unpack_int(out)

    # ------------------------------------------------------------------
    # Cutters
    # ------------------------------------------------------------------
    def pack_cutters(
        self,
        heights: Sequence[int],
        rows: Sequence[int],
        columns: Sequence[int],
        shape: tuple[int, int, int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple[int, int, int]]:
        l, n, m = shape
        words = words_per_row(m)
        h = np.ascontiguousarray(heights, dtype=np.int64)
        r = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.empty((len(columns), words), dtype=_WORD_DTYPE)
        for i, mask in enumerate(columns):
            cols[i] = _pack_int(mask, words)
        return h, r, cols, shape

    def first_applicable_cutter(
        self, handle: Any, heights: int, rows: int, columns: int, start: int
    ) -> int:
        h, r, cols, (l, n, m) = handle
        n_cutters = len(h)
        if start >= n_cutters:
            return n_cutters
        words = cols.shape[1]
        return _native.first_applicable_cutter(
            h, r, cols, n_cutters, words,
            _select_bytes(heights, l), _select_bytes(rows, n),
            columns.to_bytes(words * 8, "little"), start,
        )
