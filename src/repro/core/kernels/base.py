"""The kernel backend contract.

A *kernel* supplies the batch bitset operations that dominate mining:
AND/OR folds over many masks, popcounts over a mask list, subset tests
against a mask array, representative-slice folding over a dataset's
(height, row) mask grid, and the cutter-applicability scan of
CubeMiner's inner loop.  The miners keep exchanging plain Python ``int``
bitmasks (see :mod:`repro.core.bitset`); a kernel is free to use any
internal representation — it converts at the boundary via *handles*:

* a **mask-array handle** (:meth:`Kernel.pack_masks`) stands for a
  sequence of masks over one bit universe, e.g. the row masks of a
  :class:`~repro.fcp.matrix.BinaryMatrix`;
* a **grid handle** (:meth:`Kernel.pack_grid`) stands for the ``l x n``
  grid of per-(height, row) column masks of a
  :class:`~repro.core.dataset.Dataset3D`;
* a **cutter handle** (:meth:`Kernel.pack_cutters`) stands for
  CubeMiner's cutter list Z.

Handles are immutable once built and are cached by their owners
(dataset, matrix, miner run), so packing cost is paid once per object,
not per operation.  Handles never travel between kernels or processes:
pickled owners drop them and repack lazily on the other side.

Empty-selection conventions match the closure operators' intersection
semantics: an AND-fold over an empty family is the full universe, an
OR-fold is empty, and a support query with an empty opposing set
returns every candidate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any, ClassVar

import numpy as np

__all__ = [
    "Kernel",
    "PackedBufferError",
    "KernelUnavailableError",
    "words_per_row",
    "words_from_tensor",
    "tensor_from_words",
    "release_mapped_pages",
]

#: Canonical packed-word dtype shared by every words-native structure:
#: little-endian uint64, word ``w`` holding bits ``64w .. 64w+63``.
WORD_DTYPE = np.dtype("<u8")


class PackedBufferError(ValueError):
    """A packed mask/grid buffer does not match its declared geometry.

    Raised when caller-supplied shape metadata disagrees with the actual
    buffer (wrong dtype, word count, row count, or stray bits beyond the
    declared universe) — e.g. a corrupted or mislabeled shared-memory
    segment.  Subclasses :class:`ValueError` so untyped callers keep
    working.
    """


class KernelUnavailableError(ValueError):
    """A known kernel backend cannot run on this interpreter.

    Raised when a backend's name is recognised but its implementation
    is missing — e.g. ``native`` requested while the C extension was
    never compiled.  Distinct from the plain :class:`ValueError` of an
    *unknown* name so callers can tell "typo" from "not built here";
    subclasses :class:`ValueError` so untyped callers keep working.
    """

    def __init__(self, kernel: str, reason: str) -> None:
        super().__init__(
            f"kernel {kernel!r} is unavailable on this interpreter: {reason}"
        )
        self.kernel = kernel
        self.reason = reason


def words_per_row(n_bits: int) -> int:
    """Number of 64-bit words needed for an ``n_bits`` universe."""
    return (n_bits + 63) // 64


def words_from_tensor(data: np.ndarray) -> np.ndarray:
    """Pack an ``(l, n, m)`` bool tensor into ``(l, n, words)`` uint64 words.

    The layout is the library-wide little-endian convention: bit ``j``
    of row ``(k, i)`` lives in word ``j // 64`` at bit ``j % 64``.  This
    is the canonical byte-for-byte representation published through
    shared memory, independent of the kernel that will consume it.
    """
    l, n, m = data.shape
    words = words_per_row(m)
    bits = np.packbits(data, axis=-1, bitorder="little")
    padded = np.zeros((l, n, words * 8), dtype=np.uint8)
    padded[:, :, : bits.shape[2]] = bits
    return padded.view(WORD_DTYPE)


def tensor_from_words(words_arr: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """Unpack ``(l, n, words)`` uint64 words back into an ``(l, n, m)`` bool
    tensor (inverse of :func:`words_from_tensor`)."""
    l, n, m = shape
    if m == 0 or l == 0 or n == 0:
        return np.zeros(shape, dtype=bool)
    raw = np.ascontiguousarray(words_arr, dtype=WORD_DTYPE).view(np.uint8)
    bits = np.unpackbits(raw, axis=-1, bitorder="little", count=m)
    return bits.astype(bool)


def release_mapped_pages(array: np.ndarray) -> bool:
    """Drop the resident pages of a memory-mapped array (best effort).

    Walks ``array``'s base chain to the underlying :class:`numpy.memmap`
    (views created by slicing or ``setflags`` keep the mapping as their
    base) and advises the kernel the pages are no longer needed.  The
    data stays valid — the next access simply faults back in from disk —
    so out-of-core scans can touch an arbitrarily large mapping while
    keeping their resident set bounded to the pages between two release
    calls.  Returns ``False`` (and changes nothing) when ``array`` is
    not file-backed or the platform lacks ``madvise``.
    """
    import mmap as _mmap

    node = array
    while node is not None:
        mapping = getattr(node, "_mmap", None)
        if mapping is not None:
            try:
                mapping.madvise(_mmap.MADV_DONTNEED)
            except (AttributeError, ValueError, OSError):
                return False
            return True
        node = getattr(node, "base", None)
    return False


class Kernel(ABC):
    """Interchangeable batch-bitset backend.

    All masks crossing the interface are non-negative Python ints with
    bit ``i`` set when index ``i`` belongs to the set.  Subclasses must
    be stateless (one shared instance serves every caller) and define a
    unique class-level ``name`` used by the registry.
    """

    name: ClassVar[str]

    #: True when this kernel's mask-array and grid handles natively *are*
    #: the little-endian packed-uint64 word arrays of
    #: :func:`words_from_tensor` — such a kernel can adopt a
    #: shared-memory word buffer as a handle without copying.
    words_native: ClassVar[bool] = False

    # ------------------------------------------------------------------
    # Mask arrays (1D)
    # ------------------------------------------------------------------
    @abstractmethod
    def pack_masks(self, masks: Sequence[int], n_bits: int) -> Any:
        """Build a handle for ``masks``, each over a ``n_bits`` universe."""

    @abstractmethod
    def unpack_masks(self, handle: Any) -> list[int]:
        """Recover the packed masks as plain ints (inverse of pack)."""

    @abstractmethod
    def fold_and(self, handle: Any, n_bits: int, select: int | None = None) -> int:
        """AND of ``masks[i]`` for every ``i`` in ``select``.

        ``select`` is a row-index bitmask (``None`` selects all); an
        empty selection returns the full ``n_bits`` universe.
        """

    @abstractmethod
    def fold_or(self, handle: Any, n_bits: int, select: int | None = None) -> int:
        """OR of ``masks[i]`` over ``select`` (empty selection -> 0)."""

    @abstractmethod
    def popcounts(self, handle: Any) -> list[int]:
        """Per-mask set sizes, in pack order."""

    @abstractmethod
    def supersets_of(self, handle: Any, sub: int) -> int:
        """Index bitmask of the packed masks that contain ``sub``."""

    def check_packed(self, handle: Any, n_bits: int) -> int:
        """Validate a mask-array handle against its declared universe.

        Returns the row count on success; raises
        :class:`PackedBufferError` when the handle's geometry disagrees
        with ``n_bits`` or any mask carries bits outside the universe.
        Guards handles arriving from untrusted buffers (checkpoint
        journals, shared-memory segments) before they become a
        :class:`~repro.fcp.matrix.BinaryMatrix`.  The generic path
        validates the plain-int masks; words-native backends check the
        word geometry directly without unpacking.
        """
        masks = handle if isinstance(handle, list) else self.unpack_masks(handle)
        for i, mask in enumerate(masks):
            if not isinstance(mask, int):
                raise PackedBufferError(
                    f"row {i} of a {self.name} handle is {type(mask).__name__}, "
                    "expected int"
                )
            if mask < 0 or mask >> n_bits:
                raise PackedBufferError(
                    f"row {i} mask has bits outside the {n_bits}-bit universe"
                )
        return len(masks)

    # ------------------------------------------------------------------
    # Batched primitives (concrete defaults; subclasses may vectorize)
    # ------------------------------------------------------------------
    def and_many(self, handle_a: Any, handle_b: Any, n_bits: int) -> Any:
        """Elementwise AND of two equal-length mask arrays, as a handle.

        The workhorse of incremental representative-slice folding: one
        call extends a partial fold by one height slice without
        unpacking to Python ints.  The generic path does round-trip;
        both shipped backends override it.
        """
        masks_a = self.unpack_masks(handle_a)
        masks_b = self.unpack_masks(handle_b)
        if len(masks_a) != len(masks_b):
            raise ValueError(
                f"and_many needs equal-length mask arrays, "
                f"got {len(masks_a)} and {len(masks_b)}"
            )
        return self.pack_masks(
            [a & b for a, b in zip(masks_a, masks_b)], n_bits
        )

    def popcount_many(self, masks: Sequence[int], n_bits: int) -> list[int]:
        """Set sizes of raw int masks, without a packing round-trip.

        Complements :meth:`popcounts` (which needs a pre-packed handle)
        for one-shot batches where building a handle would cost more
        than the count itself.
        """
        return [mask.bit_count() for mask in masks]

    def intersect_rows(self, grid: Any, heights: int, n_bits: int) -> Any:
        """Per-row AND over the selected heights, as a mask-array handle.

        The handle-returning sibling of :meth:`grid_fold_rows`: RSM's
        representative-slice construction feeds the result straight
        into a :class:`~repro.fcp.matrix.BinaryMatrix` without an
        int round-trip on backends whose handles are not int lists.
        An empty selection yields full-universe masks.
        """
        return self.pack_masks(
            self.grid_fold_rows(grid, heights, n_bits), n_bits
        )

    def grid_slice_rows(self, grid: Any, height: int, n_bits: int) -> Any:
        """One height slice of the grid as a mask-array handle.

        Seeds the incremental fold of :meth:`intersect_rows` /
        :meth:`and_many` chains.  The generic path goes through
        :meth:`grid_fold_rows` with a singleton selection.
        """
        return self.pack_masks(
            self.grid_fold_rows(grid, 1 << height, n_bits), n_bits
        )

    # ------------------------------------------------------------------
    # Dataset grids (l heights x n rows of column masks)
    # ------------------------------------------------------------------
    @abstractmethod
    def pack_grid(self, masks: Sequence[Sequence[int]], n_bits: int) -> Any:
        """Build a grid handle from ``masks[k][i]`` column bitmasks."""

    def pack_grid_from_tensor(self, data: np.ndarray) -> Any:
        """Build a grid handle straight from an ``(l, n, m)`` bool tensor.

        The generic path packs each row through numpy and defers to
        :meth:`pack_grid`; subclasses may shortcut it.
        """
        l, n, m = data.shape
        grid: list[list[int]] = []
        for k in range(l):
            row_masks = []
            for i in range(n):
                packed = np.packbits(data[k, i], bitorder="little").tobytes()
                row_masks.append(int.from_bytes(packed, "little"))
            grid.append(row_masks)
        return self.pack_grid(grid, m)

    @abstractmethod
    def grid_fold_and(self, grid: Any, heights: int, rows: int, n_bits: int) -> int:
        """AND of ``grid[k][i]`` over ``k in heights, i in rows``.

        The paper's ``C(H' x R')`` operator; an empty height or row
        selection returns the full column universe.
        """

    @abstractmethod
    def grid_fold_rows(self, grid: Any, heights: int, n_bits: int) -> list[int]:
        """Representative-slice folding: per-row AND over ``heights``.

        Returns one column mask per grid row — the row masks of the
        representative slice of the selected height subset.  An empty
        selection yields full-universe masks (empty intersection).
        """

    @abstractmethod
    def grid_supporting_heights(
        self, grid: Any, rows: int, columns: int, candidates: int | None = None
    ) -> int:
        """Heights whose slices contain ``columns`` on every row of ``rows``.

        The paper's ``H(R' x C')`` operator restricted to ``candidates``
        (``None`` = all heights).  With ``rows`` empty every candidate
        qualifies.
        """

    @abstractmethod
    def grid_supporting_rows(
        self, grid: Any, heights: int, columns: int, candidates: int | None = None
    ) -> int:
        """Rows containing ``columns`` on every height of ``heights``.

        The paper's ``R(H' x C')`` operator restricted to ``candidates``.
        """

    # ------------------------------------------------------------------
    # CubeMiner cutters
    # ------------------------------------------------------------------
    @abstractmethod
    def pack_cutters(
        self,
        heights: Sequence[int],
        rows: Sequence[int],
        columns: Sequence[int],
        shape: tuple[int, int, int],
    ) -> Any:
        """Build a handle for a cutter list (parallel height/row/columns)."""

    @abstractmethod
    def first_applicable_cutter(
        self, handle: Any, heights: int, rows: int, columns: int, start: int
    ) -> int:
        """Index of the first cutter at or after ``start`` that intersects
        the node ``(heights, rows, columns)``; the cutter count if none
        does (Algorithm 2, line 6).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
