"""Packed-uint64 kernel vectorized with numpy.

Masks are stored as little-endian ``uint64`` word arrays (word ``w``
holds bits ``64w .. 64w+63``), so a batch operation over many masks is
a handful of whole-array bitwise ops instead of a Python-level loop:

* mask arrays pack to ``(k, words)`` matrices,
* dataset grids pack to ``(l, n, words)`` tensors (built straight from
  the bool tensor via ``np.packbits``),
* subset tests are ``(sub & ~A) == 0`` reductions,
* AND/OR folds are ``np.bitwise_and.reduce`` / ``bitwise_or.reduce``,
* popcounts use ``np.bitwise_count``.

Conversion to and from the miners' Python-int masks happens only at the
interface boundary (``int.to_bytes`` / ``int.from_bytes`` round-trips
through the same little-endian layout).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..bitset import full_mask
from .base import Kernel, PackedBufferError, words_from_tensor, words_per_row

__all__ = ["NumpyKernel"]

_WORD_DTYPE = np.dtype("<u8")


def _n_words(n_bits: int) -> int:
    return words_per_row(n_bits)


def _pack_int(mask: int, words: int) -> np.ndarray:
    """One int mask -> a ``(words,)`` uint64 array."""
    return np.frombuffer(mask.to_bytes(words * 8, "little"), dtype=_WORD_DTYPE)


def _unpack_int(words_arr: np.ndarray) -> int:
    """A ``(words,)`` uint64 array -> the int mask it encodes."""
    return int.from_bytes(np.ascontiguousarray(words_arr, dtype=_WORD_DTYPE).tobytes(), "little")


def _select_bools(select: int, count: int) -> np.ndarray:
    """An index bitmask -> a ``(count,)`` bool selector array."""
    words = _n_words(count)
    raw = np.frombuffer(select.to_bytes(words * 8, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little", count=count).astype(bool)


def _mask_from_bools(flags: np.ndarray) -> int:
    """A bool array -> the index bitmask of its True positions."""
    if flags.size == 0:
        return 0
    return int.from_bytes(
        np.packbits(flags, bitorder="little").tobytes(), "little"
    )


class NumpyKernel(Kernel):
    """Vectorized batch operations on packed uint64 word arrays."""

    name = "numpy"
    words_native = True

    # ------------------------------------------------------------------
    # Mask arrays
    # ------------------------------------------------------------------
    def pack_masks(self, masks: Sequence[int], n_bits: int) -> np.ndarray:
        words = _n_words(n_bits)
        packed = np.empty((len(masks), words), dtype=_WORD_DTYPE)
        for i, mask in enumerate(masks):
            packed[i] = _pack_int(mask, words)
        return packed

    def unpack_masks(self, handle: np.ndarray) -> list[int]:
        return [_unpack_int(row) for row in handle]

    def fold_and(self, handle: np.ndarray, n_bits: int, select: int | None = None) -> int:
        rows = handle if select is None else handle[_select_bools(select, len(handle))]
        if rows.shape[0] == 0:
            return full_mask(n_bits)
        return _unpack_int(np.bitwise_and.reduce(rows, axis=0))

    def fold_or(self, handle: np.ndarray, n_bits: int, select: int | None = None) -> int:
        rows = handle if select is None else handle[_select_bools(select, len(handle))]
        if rows.shape[0] == 0:
            return 0
        return _unpack_int(np.bitwise_or.reduce(rows, axis=0))

    def popcounts(self, handle: np.ndarray) -> list[int]:
        if handle.size == 0:
            return [0] * len(handle)
        return np.bitwise_count(handle).sum(axis=1, dtype=np.int64).tolist()

    def supersets_of(self, handle: np.ndarray, sub: int) -> int:
        sub_words = _pack_int(sub, handle.shape[1])
        ok = ((sub_words & ~handle) == 0).all(axis=1)
        return _mask_from_bools(ok)

    def check_packed(self, handle: np.ndarray, n_bits: int) -> int:
        arr = np.asarray(handle)
        if arr.ndim != 2 or arr.dtype != _WORD_DTYPE:
            raise PackedBufferError(
                f"numpy handle must be a rank-2 {_WORD_DTYPE} array, got "
                f"rank {arr.ndim} {arr.dtype}"
            )
        words = _n_words(n_bits)
        if arr.shape[1] != words:
            raise PackedBufferError(
                f"handle holds {arr.shape[1]} words per row, expected "
                f"{words} for a {n_bits}-bit universe"
            )
        tail_bits = n_bits % 64
        if arr.size and tail_bits:
            allowed = np.uint64((1 << tail_bits) - 1)
            if (arr[:, -1] & ~allowed).any():
                raise PackedBufferError(
                    f"handle carries stray bits beyond the {n_bits}-bit universe"
                )
        return int(arr.shape[0])

    # ------------------------------------------------------------------
    # Batched primitives
    # ------------------------------------------------------------------
    def and_many(self, handle_a: np.ndarray, handle_b: np.ndarray, n_bits: int) -> np.ndarray:
        if handle_a.shape != handle_b.shape:
            raise ValueError(
                f"and_many needs equal-shape mask arrays, "
                f"got {handle_a.shape} and {handle_b.shape}"
            )
        return handle_a & handle_b

    def popcount_many(self, masks: Sequence[int], n_bits: int) -> list[int]:
        if not masks:
            return []
        return np.bitwise_count(self.pack_masks(masks, n_bits)).sum(
            axis=1, dtype=np.int64
        ).tolist()

    def intersect_rows(self, grid: np.ndarray, heights: int, n_bits: int) -> np.ndarray:
        l, n, words = grid.shape
        if heights == 0:
            full = np.empty((n, words), dtype=_WORD_DTYPE)
            full[:] = _pack_int(full_mask(n_bits), words)
            return full
        return np.bitwise_and.reduce(grid[_select_bools(heights, l)], axis=0)

    def grid_slice_rows(self, grid: np.ndarray, height: int, n_bits: int) -> np.ndarray:
        return grid[height]

    # ------------------------------------------------------------------
    # Grids
    # ------------------------------------------------------------------
    def pack_grid(self, masks: Sequence[Sequence[int]], n_bits: int) -> np.ndarray:
        words = _n_words(n_bits)
        l = len(masks)
        n = len(masks[0]) if l else 0
        packed = np.empty((l, n, words), dtype=_WORD_DTYPE)
        for k, per_height in enumerate(masks):
            for i, mask in enumerate(per_height):
                packed[k, i] = _pack_int(mask, words)
        return packed

    def pack_grid_from_tensor(self, data: np.ndarray) -> np.ndarray:
        return words_from_tensor(data)

    def grid_fold_and(self, grid: np.ndarray, heights: int, rows: int, n_bits: int) -> int:
        if heights == 0 or rows == 0:
            return full_mask(n_bits)
        l, n, words = grid.shape
        sel = grid[np.ix_(_select_bools(heights, l), _select_bools(rows, n))]
        return _unpack_int(np.bitwise_and.reduce(sel.reshape(-1, words), axis=0))

    def grid_fold_rows(self, grid: np.ndarray, heights: int, n_bits: int) -> list[int]:
        l, n, words = grid.shape
        if heights == 0:
            return [full_mask(n_bits)] * n
        folded = np.bitwise_and.reduce(grid[_select_bools(heights, l)], axis=0)
        return [_unpack_int(folded[i]) for i in range(n)]

    def grid_supporting_heights(
        self, grid: np.ndarray, rows: int, columns: int, candidates: int | None = None
    ) -> int:
        l, n, words = grid.shape
        if candidates is None:
            candidates = full_mask(l)
        if candidates == 0:
            return 0
        if rows == 0:
            return candidates
        cand = _select_bools(candidates, l)
        sub = grid[np.ix_(cand, _select_bools(rows, n))]
        col_words = _pack_int(columns, words)
        ok = ((col_words & ~sub) == 0).all(axis=(1, 2))
        supported = np.zeros(l, dtype=bool)
        supported[cand] = ok
        return _mask_from_bools(supported)

    def grid_supporting_rows(
        self, grid: np.ndarray, heights: int, columns: int, candidates: int | None = None
    ) -> int:
        l, n, words = grid.shape
        if candidates is None:
            candidates = full_mask(n)
        if candidates == 0:
            return 0
        if heights == 0:
            return candidates
        cand = _select_bools(candidates, n)
        sub = grid[np.ix_(_select_bools(heights, l), cand)]
        col_words = _pack_int(columns, words)
        ok = ((col_words & ~sub) == 0).all(axis=(0, 2))
        supported = np.zeros(n, dtype=bool)
        supported[cand] = ok
        return _mask_from_bools(supported)

    # ------------------------------------------------------------------
    # Cutters
    # ------------------------------------------------------------------
    def pack_cutters(
        self,
        heights: Sequence[int],
        rows: Sequence[int],
        columns: Sequence[int],
        shape: tuple[int, int, int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, tuple[int, int, int]]:
        l, n, m = shape
        words = _n_words(m)
        h = np.asarray(heights, dtype=np.int64)
        r = np.asarray(rows, dtype=np.int64)
        cols = np.empty((len(columns), words), dtype=_WORD_DTYPE)
        for i, mask in enumerate(columns):
            cols[i] = _pack_int(mask, words)
        # Pre-split the height/row indices into (word, bit) addresses so
        # the per-node scan is pure vectorized gathers.
        return (
            (h >> 6).astype(np.int64),
            (h & 63).astype(np.uint64),
            (r >> 6).astype(np.int64),
            (r & 63).astype(np.uint64),
            cols,
            shape,
        )

    def first_applicable_cutter(
        self, handle: Any, heights: int, rows: int, columns: int, start: int
    ) -> int:
        h_word, h_bit, r_word, r_bit, cols, (l, n, m) = handle
        n_cutters = len(h_word)
        if start >= n_cutters:
            return n_cutters
        height_words = _pack_int(heights, _n_words(l))
        row_words = _pack_int(rows, _n_words(n))
        col_words = _pack_int(columns, cols.shape[1])
        tail = slice(start, None)
        applicable = (
            ((height_words[h_word[tail]] >> h_bit[tail]) & 1).astype(bool)
            & ((row_words[r_word[tail]] >> r_bit[tail]) & 1).astype(bool)
            & (cols[tail] & col_words).any(axis=1)
        )
        hits = np.flatnonzero(applicable)
        return start + int(hits[0]) if hits.size else n_cutters
