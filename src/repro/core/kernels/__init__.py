"""Pluggable bitset kernel backends.

Every bulk set-intersection in the library — the closure operators
``H(R' x C')`` / ``R(H' x C')`` / ``C(H' x R')``, representative-slice
construction, CubeMiner's cutter scan and closure checks, and the 2D
binary-matrix supports — goes through a :class:`~repro.core.kernels.base.Kernel`.
Two backends ship by default:

* ``python-int`` — arbitrary-precision int masks, loop-based batch ops
  (the historical implementation and behavioural baseline);
* ``numpy`` — packed little-endian uint64 word arrays with vectorized
  batch operations.

Selection precedence (see ``docs/kernels.md``):

1. an explicit argument — ``mine(..., kernel="numpy")``,
   ``Dataset3D(..., kernel=...)`` or the ``--kernel`` CLI flag;
2. the ``REPRO_KERNEL`` environment variable;
3. the built-in default, ``python-int``.

New backends register through :func:`register_kernel`, which makes them
instantly available to every miner, the CLI, and the differential test
suite (the suite iterates :func:`available_kernels`).
"""

from __future__ import annotations

import os

from .base import (
    Kernel,
    PackedBufferError,
    release_mapped_pages,
    tensor_from_words,
    words_from_tensor,
    words_per_row,
)
from .numpy_kernel import NumpyKernel
from .python_int import PythonIntKernel

__all__ = [
    "Kernel",
    "PackedBufferError",
    "words_per_row",
    "words_from_tensor",
    "tensor_from_words",
    "release_mapped_pages",
    "PythonIntKernel",
    "NumpyKernel",
    "KERNEL_ENV_VAR",
    "DEFAULT_KERNEL",
    "register_kernel",
    "available_kernels",
    "get_kernel",
    "default_kernel_name",
    "resolve_kernel",
]

#: Environment variable consulted when no kernel is passed explicitly.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Fallback backend when neither an argument nor the env var selects one.
DEFAULT_KERNEL = "python-int"

_REGISTRY: dict[str, type[Kernel]] = {}
_INSTANCES: dict[str, Kernel] = {}


def register_kernel(cls: type[Kernel]) -> type[Kernel]:
    """Register a :class:`Kernel` subclass under its ``name`` (decorator-friendly)."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"kernel class {cls!r} must define a non-empty string name")
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    return cls


def available_kernels() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_kernel(name: str) -> Kernel:
    """Return the shared instance of the backend called ``name``."""
    try:
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _INSTANCES[name] = _REGISTRY[name]()
        return instance
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {available_kernels()}"
        ) from None


def default_kernel_name() -> str:
    """The backend selected by ``REPRO_KERNEL``, or the built-in default."""
    return os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL


def resolve_kernel(spec: "str | Kernel | None" = None) -> Kernel:
    """Resolve a kernel spec with arg > env > default precedence.

    ``spec`` may be a :class:`Kernel` instance (returned as-is), a
    registered name, or ``None`` to fall back to the environment /
    default.  The env var is read at call time, not import time, so
    changing ``REPRO_KERNEL`` affects datasets created afterwards.
    """
    if spec is None:
        name = default_kernel_name()
        try:
            return get_kernel(name)
        except ValueError:
            raise ValueError(
                f"{KERNEL_ENV_VAR}={name!r} does not name a registered kernel; "
                f"choose from {available_kernels()}"
            ) from None
    if isinstance(spec, Kernel):
        return spec
    return get_kernel(spec)


register_kernel(PythonIntKernel)
register_kernel(NumpyKernel)
