"""Pluggable bitset kernel backends.

Every bulk set-intersection in the library — the closure operators
``H(R' x C')`` / ``R(H' x C')`` / ``C(H' x R')``, representative-slice
construction, CubeMiner's cutter scan and closure checks, and the 2D
binary-matrix supports — goes through a :class:`~repro.core.kernels.base.Kernel`.
Three backends ship by default:

* ``python-int`` — arbitrary-precision int masks, loop-based batch ops
  (the historical implementation and behavioural baseline);
* ``numpy`` — packed little-endian uint64 word arrays with vectorized
  batch operations;
* ``native`` — the same packed layout driven by the optional ``_native``
  C extension (built by ``setup.py`` when a compiler is present); when
  the extension is missing the name stays *known but unavailable*:
  explicit requests raise
  :class:`~repro.core.kernels.base.KernelUnavailableError`, while
  environment-driven auto-selection degrades to ``numpy`` and counts
  the event (:func:`kernel_fallback_count`, surfaced per run as the
  ``kernel_fallbacks`` counter of
  :class:`~repro.obs.metrics.MiningMetrics`).

Selection precedence (see ``docs/kernels.md``):

1. an explicit argument — ``mine(..., kernel="numpy")``,
   ``Dataset3D(..., kernel=...)`` or the ``--kernel`` CLI flag;
2. the ``REPRO_KERNEL`` environment variable;
3. the built-in default, ``python-int``.

New backends register through :func:`register_kernel`, which makes them
instantly available to every miner, the CLI, and the differential test
suite (the suite iterates :func:`available_kernels`).
"""

from __future__ import annotations

import os
import warnings

from .base import (
    Kernel,
    KernelUnavailableError,
    PackedBufferError,
    release_mapped_pages,
    tensor_from_words,
    words_from_tensor,
    words_per_row,
)
from .native_kernel import (
    NativeKernel,
    native_available,
    native_features,
    native_import_error,
)
from .numpy_kernel import NumpyKernel
from .python_int import PythonIntKernel

__all__ = [
    "Kernel",
    "PackedBufferError",
    "KernelUnavailableError",
    "words_per_row",
    "words_from_tensor",
    "tensor_from_words",
    "release_mapped_pages",
    "PythonIntKernel",
    "NumpyKernel",
    "NativeKernel",
    "native_available",
    "native_import_error",
    "native_features",
    "KERNEL_ENV_VAR",
    "DEFAULT_KERNEL",
    "FALLBACK_KERNEL",
    "register_kernel",
    "available_kernels",
    "known_kernels",
    "get_kernel",
    "default_kernel_name",
    "resolve_kernel",
    "kernel_fallback_count",
    "preferred_words_native_kernel",
]

#: Environment variable consulted when no kernel is passed explicitly.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Fallback backend when neither an argument nor the env var selects one.
DEFAULT_KERNEL = "python-int"

#: Backend substituted when auto-selection names an unavailable kernel
#: (``REPRO_KERNEL=native`` without the built extension): same packed
#: word layout, next-fastest batch operations.
FALLBACK_KERNEL = "numpy"

_REGISTRY: dict[str, type[Kernel]] = {}
_INSTANCES: dict[str, Kernel] = {}

#: Backends whose names are recognised but whose implementation cannot
#: run here, mapped to the human-readable reason.  ``get_kernel`` turns
#: these into :class:`KernelUnavailableError` instead of "unknown".
_UNAVAILABLE: dict[str, str] = {}

#: Auto-selection degradations recorded by :func:`resolve_kernel` (the
#: env var named an unavailable backend).  Monotone; runs snapshot it
#: around their own kernel resolution to attribute events (see
#: ``repro.api.mine``).
_FALLBACK_COUNT = 0

_WARNED_FALLBACKS: set[str] = set()


def register_kernel(cls: type[Kernel]) -> type[Kernel]:
    """Register a :class:`Kernel` subclass under its ``name`` (decorator-friendly)."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"kernel class {cls!r} must define a non-empty string name")
    _REGISTRY[name] = cls
    _INSTANCES.pop(name, None)
    _UNAVAILABLE.pop(name, None)
    return cls


def available_kernels() -> tuple[str, ...]:
    """Registered, runnable backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def known_kernels() -> tuple[str, ...]:
    """Every recognised backend name, runnable or not, sorted.

    The superset of :func:`available_kernels` that includes backends
    whose implementation is missing on this interpreter (e.g. the
    ``native`` C extension before it is compiled).  The CLI advertises
    these so a request for one fails with the typed unavailability
    error instead of an "invalid choice" parse error.
    """
    return tuple(sorted(set(_REGISTRY) | set(_UNAVAILABLE)))


def kernel_fallback_count() -> int:
    """Total auto-selection degradations recorded in this process."""
    return _FALLBACK_COUNT


def get_kernel(name: str) -> Kernel:
    """Return the shared instance of the backend called ``name``.

    Raises :class:`KernelUnavailableError` for a recognised backend
    that cannot run here, plain :class:`ValueError` for an unknown name.
    """
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    cls = _REGISTRY.get(name)
    if cls is None:
        if name in _UNAVAILABLE:
            raise KernelUnavailableError(name, _UNAVAILABLE[name])
        raise ValueError(
            f"unknown kernel {name!r}; choose from {available_kernels()}"
        )
    instance = _INSTANCES[name] = cls()
    return instance


def default_kernel_name() -> str:
    """The backend selected by ``REPRO_KERNEL``, or the built-in default."""
    return os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL


def _record_fallback(name: str, error: KernelUnavailableError) -> None:
    global _FALLBACK_COUNT
    _FALLBACK_COUNT += 1
    if name not in _WARNED_FALLBACKS:
        _WARNED_FALLBACKS.add(name)
        warnings.warn(
            f"{KERNEL_ENV_VAR}={name} is unavailable ({error.reason}); "
            f"falling back to the {FALLBACK_KERNEL!r} kernel",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_kernel(spec: "str | Kernel | None" = None) -> Kernel:
    """Resolve a kernel spec with arg > env > default precedence.

    ``spec`` may be a :class:`Kernel` instance (returned as-is), a
    registered name, or ``None`` to fall back to the environment /
    default.  The env var is read at call time, not import time, so
    changing ``REPRO_KERNEL`` affects datasets created afterwards.

    An *explicit* spec naming a known-but-unavailable backend raises
    :class:`KernelUnavailableError` — the caller asked for something
    this interpreter cannot deliver.  When the *environment* names one,
    resolution degrades to :data:`FALLBACK_KERNEL` instead (with a
    one-time warning and a fallback-counter increment): an env var set
    for a whole CI job or shell must not brick processes that never
    compiled the extension.
    """
    if spec is None:
        name = default_kernel_name()
        try:
            return get_kernel(name)
        except KernelUnavailableError as error:
            _record_fallback(name, error)
            return get_kernel(FALLBACK_KERNEL)
        except ValueError:
            raise ValueError(
                f"{KERNEL_ENV_VAR}={name!r} does not name a registered kernel; "
                f"choose from {available_kernels()}"
            ) from None
    if isinstance(spec, Kernel):
        return spec
    return get_kernel(spec)


def preferred_words_native_kernel() -> str:
    """The fastest registered backend operating on packed word buffers.

    ``native`` when the C extension is built, else ``numpy`` — the
    choice services make when they need zero-copy shared-memory or
    memory-mapped operation and the user expressed no preference.
    """
    return "native" if "native" in _REGISTRY else FALLBACK_KERNEL


register_kernel(PythonIntKernel)
register_kernel(NumpyKernel)
if native_available():
    register_kernel(NativeKernel)
else:
    _UNAVAILABLE["native"] = (
        native_import_error() or "the _native C extension is not built"
    )
