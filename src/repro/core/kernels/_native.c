/* Native bitset kernel primitives on the packed-uint64 layout.
 *
 * Every buffer crossing this module is the library's canonical
 * little-endian packed representation (see repro.core.kernels.base):
 * bit j of a mask lives in word j >> 6 at bit position j & 63, words
 * stored little-endian.  Mask arrays are (k, words) row-major blocks,
 * dataset grids are (l, n, words) row-major blocks, and selections
 * (height subsets, row subsets, candidate sets) arrive as packed word
 * buffers of their own universe.
 *
 * The module never owns a representation: it reads and writes buffers
 * handed over through the buffer protocol (numpy arrays on the Python
 * side), so a shared-memory or memory-mapped grid is operated on in
 * place, zero-copy.  All loads and stores go through memcpy-based
 * helpers — alignment-safe, optimized to single moves by any modern
 * compiler — with byte-swapping on big-endian hosts so the bit<->index
 * correspondence of the little-endian layout is preserved everywhere.
 *
 * Compile-time feature detection:
 *   - popcount: __builtin_popcountll under GCC/Clang, SWAR fallback
 *     otherwise (feature string exposed via features());
 *   - AVX2: the bulk AND loops vectorize under -mavx2 (opt-in through
 *     setup.py's REPRO_NATIVE_AVX2=1); scalar loops otherwise.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

#if defined(__AVX2__)
#include <immintrin.h>
#define REPRO_SIMD "avx2"
#else
#define REPRO_SIMD "scalar"
#endif

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_POPCOUNT_IMPL "__builtin_popcountll"
static inline uint64_t
popcount64(uint64_t x)
{
    return (uint64_t)__builtin_popcountll((unsigned long long)x);
}
#else
#define REPRO_POPCOUNT_IMPL "swar"
static inline uint64_t
popcount64(uint64_t x)
{
    x = x - ((x >> 1) & UINT64_C(0x5555555555555555));
    x = (x & UINT64_C(0x3333333333333333)) +
        ((x >> 2) & UINT64_C(0x3333333333333333));
    x = (x + (x >> 4)) & UINT64_C(0x0F0F0F0F0F0F0F0F);
    return (x * UINT64_C(0x0101010101010101)) >> 56;
}
#endif

#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) && \
    (__BYTE_ORDER__ == __ORDER_BIG_ENDIAN__)
#define REPRO_BIG_ENDIAN 1
#else
#define REPRO_BIG_ENDIAN 0
#endif

/* Load/store one little-endian packed word at byte offset 8*i. */
static inline uint64_t
load_word(const unsigned char *base, Py_ssize_t i)
{
    uint64_t v;
    memcpy(&v, base + 8 * i, sizeof v);
#if REPRO_BIG_ENDIAN
    v = __builtin_bswap64(v);
#endif
    return v;
}

static inline void
store_word(unsigned char *base, Py_ssize_t i, uint64_t v)
{
#if REPRO_BIG_ENDIAN
    v = __builtin_bswap64(v);
#endif
    memcpy(base + 8 * i, &v, sizeof v);
}

static inline int64_t
load_i64(const unsigned char *base, Py_ssize_t i)
{
    return (int64_t)load_word(base, i);
}

/* Is bit `index` set in the packed selection buffer? */
static inline int
test_bit(const unsigned char *sel, Py_ssize_t index)
{
    return (int)((load_word(sel, index >> 6) >> (index & 63)) & 1);
}

/* dst[0..words) &= src[0..words); returns 1 if dst is non-zero after. */
static inline int
and_into(unsigned char *dst, const unsigned char *src, Py_ssize_t words)
{
    Py_ssize_t i = 0;
    uint64_t any = 0;
#if defined(__AVX2__)
    for (; i + 4 <= words; i += 4) {
        __m256i a = _mm256_loadu_si256((const __m256i *)(dst + 8 * i));
        __m256i b = _mm256_loadu_si256((const __m256i *)(src + 8 * i));
        __m256i r = _mm256_and_si256(a, b);
        _mm256_storeu_si256((__m256i *)(dst + 8 * i), r);
        any |= (uint64_t)!_mm256_testz_si256(r, r);
    }
#endif
    for (; i < words; i++) {
        uint64_t v = load_word(dst, i) & load_word(src, i);
        store_word(dst, i, v);
        any |= v;
    }
    return any != 0;
}

/* Is sub a subset of mask, word-wise ((sub & ~mask) == 0)? */
static inline int
is_subset_words(const unsigned char *sub, const unsigned char *mask,
                Py_ssize_t words)
{
    for (Py_ssize_t i = 0; i < words; i++) {
        if (load_word(sub, i) & ~load_word(mask, i))
            return 0;
    }
    return 1;
}

/* ------------------------------------------------------------------ */
/* Optional-buffer helper: Py_None or a contiguous read buffer.       */
/* ------------------------------------------------------------------ */

static int
get_optional_buffer(PyObject *obj, Py_buffer *view, int *present)
{
    if (obj == Py_None) {
        *present = 0;
        return 0;
    }
    if (PyObject_GetBuffer(obj, view, PyBUF_C_CONTIGUOUS) < 0)
        return -1;
    *present = 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* fold_and(masks, n_rows, n_words, select, out) -> bool               */
/*                                                                     */
/* AND of the selected rows into out (pre-sized to n_words words).     */
/* select is None (all rows) or a packed row-index bitmask; the caller  */
/* guarantees at least one row is selected (empty selections short-    */
/* circuit in Python, where the universe width is known).  Returns     */
/* True when the fold terminated early on an all-zero accumulator.     */
/* ------------------------------------------------------------------ */

static PyObject *
native_fold_and(PyObject *self, PyObject *args)
{
    Py_buffer masks, out;
    PyObject *select_obj;
    Py_buffer select;
    int has_select = 0;
    Py_ssize_t n_rows, n_words;

    if (!PyArg_ParseTuple(args, "y*nnOw*:fold_and",
                          &masks, &n_rows, &n_words, &select_obj, &out))
        return NULL;
    if (get_optional_buffer(select_obj, &select, &has_select) < 0) {
        PyBuffer_Release(&masks);
        PyBuffer_Release(&out);
        return NULL;
    }

    const unsigned char *rows = (const unsigned char *)masks.buf;
    unsigned char *acc = (unsigned char *)out.buf;
    const unsigned char *sel = has_select ? (const unsigned char *)select.buf
                                          : NULL;
    int started = 0, early = 0;

    for (Py_ssize_t i = 0; i < n_rows && !early; i++) {
        if (sel != NULL && !test_bit(sel, i))
            continue;
        const unsigned char *row = rows + 8 * i * n_words;
        if (!started) {
            memcpy(acc, row, (size_t)(8 * n_words));
            started = 1;
        } else if (!and_into(acc, row, n_words)) {
            early = 1;
        }
    }

    if (early)
        memset(acc, 0, (size_t)(8 * n_words));

    PyBuffer_Release(&masks);
    PyBuffer_Release(&out);
    if (has_select)
        PyBuffer_Release(&select);
    if (early)
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

/* ------------------------------------------------------------------ */
/* fold_or(masks, n_rows, n_words, select, out) -> None                */
/* ------------------------------------------------------------------ */

static PyObject *
native_fold_or(PyObject *self, PyObject *args)
{
    Py_buffer masks, out;
    PyObject *select_obj;
    Py_buffer select;
    int has_select = 0;
    Py_ssize_t n_rows, n_words;

    if (!PyArg_ParseTuple(args, "y*nnOw*:fold_or",
                          &masks, &n_rows, &n_words, &select_obj, &out))
        return NULL;
    if (get_optional_buffer(select_obj, &select, &has_select) < 0) {
        PyBuffer_Release(&masks);
        PyBuffer_Release(&out);
        return NULL;
    }

    const unsigned char *rows = (const unsigned char *)masks.buf;
    unsigned char *acc = (unsigned char *)out.buf;
    const unsigned char *sel = has_select ? (const unsigned char *)select.buf
                                          : NULL;

    memset(acc, 0, (size_t)(8 * n_words));
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        if (sel != NULL && !test_bit(sel, i))
            continue;
        const unsigned char *row = rows + 8 * i * n_words;
        for (Py_ssize_t w = 0; w < n_words; w++)
            store_word(acc, w, load_word(acc, w) | load_word(row, w));
    }

    PyBuffer_Release(&masks);
    PyBuffer_Release(&out);
    if (has_select)
        PyBuffer_Release(&select);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* popcounts(masks, n_rows, n_words) -> list[int]                      */
/* ------------------------------------------------------------------ */

static PyObject *
native_popcounts(PyObject *self, PyObject *args)
{
    Py_buffer masks;
    Py_ssize_t n_rows, n_words;

    if (!PyArg_ParseTuple(args, "y*nn:popcounts", &masks, &n_rows, &n_words))
        return NULL;

    PyObject *result = PyList_New(n_rows);
    if (result == NULL) {
        PyBuffer_Release(&masks);
        return NULL;
    }
    const unsigned char *rows = (const unsigned char *)masks.buf;
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        const unsigned char *row = rows + 8 * i * n_words;
        uint64_t total = 0;
        for (Py_ssize_t w = 0; w < n_words; w++)
            total += popcount64(load_word(row, w));
        PyObject *value = PyLong_FromUnsignedLongLong(total);
        if (value == NULL) {
            Py_DECREF(result);
            PyBuffer_Release(&masks);
            return NULL;
        }
        PyList_SET_ITEM(result, i, value);
    }
    PyBuffer_Release(&masks);
    return result;
}

/* ------------------------------------------------------------------ */
/* supersets_of(masks, n_rows, n_words, sub, out) -> None              */
/*                                                                     */
/* out is a packed bitmask over row indices (words_per_row(n_rows)     */
/* words) receiving a set bit for every row containing sub.            */
/* ------------------------------------------------------------------ */

static PyObject *
native_supersets_of(PyObject *self, PyObject *args)
{
    Py_buffer masks, sub, out;
    Py_ssize_t n_rows, n_words;

    if (!PyArg_ParseTuple(args, "y*nny*w*:supersets_of",
                          &masks, &n_rows, &n_words, &sub, &out))
        return NULL;

    const unsigned char *rows = (const unsigned char *)masks.buf;
    const unsigned char *sub_words = (const unsigned char *)sub.buf;
    unsigned char *result = (unsigned char *)out.buf;

    memset(result, 0, (size_t)out.len);
    for (Py_ssize_t i = 0; i < n_rows; i++) {
        const unsigned char *row = rows + 8 * i * n_words;
        if (is_subset_words(sub_words, row, n_words)) {
            Py_ssize_t w = i >> 6;
            store_word(result, w,
                       load_word(result, w) | (UINT64_C(1) << (i & 63)));
        }
    }

    PyBuffer_Release(&masks);
    PyBuffer_Release(&sub);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* and_many(a, b, out, total_words) -> None                            */
/* Elementwise AND over two equal-shape flat word blocks.              */
/* ------------------------------------------------------------------ */

static PyObject *
native_and_many(PyObject *self, PyObject *args)
{
    Py_buffer a, b, out;
    Py_ssize_t total;

    if (!PyArg_ParseTuple(args, "y*y*w*n:and_many", &a, &b, &out, &total))
        return NULL;

    const unsigned char *pa = (const unsigned char *)a.buf;
    const unsigned char *pb = (const unsigned char *)b.buf;
    unsigned char *po = (unsigned char *)out.buf;
    Py_ssize_t i = 0;
#if defined(__AVX2__)
    for (; i + 4 <= total; i += 4) {
        __m256i va = _mm256_loadu_si256((const __m256i *)(pa + 8 * i));
        __m256i vb = _mm256_loadu_si256((const __m256i *)(pb + 8 * i));
        _mm256_storeu_si256((__m256i *)(po + 8 * i),
                            _mm256_and_si256(va, vb));
    }
#endif
    for (; i < total; i++)
        store_word(po, i, load_word(pa, i) & load_word(pb, i));

    PyBuffer_Release(&a);
    PyBuffer_Release(&b);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* grid_fold_rows(grid, l, n, words, heights, out) -> None             */
/*                                                                     */
/* Per-row AND over the selected heights: out is an (n, words) block.  */
/* The caller guarantees at least one height is selected.              */
/* ------------------------------------------------------------------ */

static PyObject *
native_grid_fold_rows(PyObject *self, PyObject *args)
{
    Py_buffer grid, heights, out;
    Py_ssize_t l, n, words;

    if (!PyArg_ParseTuple(args, "y*nnny*w*:grid_fold_rows",
                          &grid, &l, &n, &words, &heights, &out))
        return NULL;

    const unsigned char *base = (const unsigned char *)grid.buf;
    const unsigned char *sel = (const unsigned char *)heights.buf;
    unsigned char *acc = (unsigned char *)out.buf;
    Py_ssize_t slice_words = n * words;
    int started = 0;

    for (Py_ssize_t k = 0; k < l; k++) {
        if (!test_bit(sel, k))
            continue;
        const unsigned char *slice = base + 8 * k * slice_words;
        if (!started) {
            memcpy(acc, slice, (size_t)(8 * slice_words));
            started = 1;
        } else {
            Py_ssize_t i = 0;
#if defined(__AVX2__)
            for (; i + 4 <= slice_words; i += 4) {
                __m256i a = _mm256_loadu_si256((const __m256i *)(acc + 8 * i));
                __m256i b = _mm256_loadu_si256(
                    (const __m256i *)(slice + 8 * i));
                _mm256_storeu_si256((__m256i *)(acc + 8 * i),
                                    _mm256_and_si256(a, b));
            }
#endif
            for (; i < slice_words; i++)
                store_word(acc, i, load_word(acc, i) & load_word(slice, i));
        }
    }

    PyBuffer_Release(&grid);
    PyBuffer_Release(&heights);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* grid_fold_and(grid, l, n, words, heights, rows, out) -> None        */
/*                                                                     */
/* AND of grid[k][i] over selected (k, i) pairs into out (words        */
/* words).  Caller guarantees both selections are non-empty; out is   */
/* pre-filled with the full-universe mask and shrinks monotonically,   */
/* with an early exit once it reaches all-zero.                        */
/* ------------------------------------------------------------------ */

static PyObject *
native_grid_fold_and(PyObject *self, PyObject *args)
{
    Py_buffer grid, heights, rows, out;
    Py_ssize_t l, n, words;

    if (!PyArg_ParseTuple(args, "y*nnny*y*w*:grid_fold_and",
                          &grid, &l, &n, &words, &heights, &rows, &out))
        return NULL;

    const unsigned char *base = (const unsigned char *)grid.buf;
    const unsigned char *hsel = (const unsigned char *)heights.buf;
    const unsigned char *rsel = (const unsigned char *)rows.buf;
    unsigned char *acc = (unsigned char *)out.buf;
    int live = 1;

    for (Py_ssize_t k = 0; k < l && live; k++) {
        if (!test_bit(hsel, k))
            continue;
        const unsigned char *slice = base + 8 * k * n * words;
        for (Py_ssize_t i = 0; i < n && live; i++) {
            if (!test_bit(rsel, i))
                continue;
            if (!and_into(acc, slice + 8 * i * words, words))
                live = 0;
        }
    }
    if (!live)
        memset(acc, 0, (size_t)(8 * words));

    PyBuffer_Release(&grid);
    PyBuffer_Release(&heights);
    PyBuffer_Release(&rows);
    PyBuffer_Release(&out);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* grid_supporting_heights(grid, l, n, words, rows, columns,           */
/*                         candidates, out) -> None                    */
/*                                                                     */
/* Sets bit k of out for every candidate height whose slice contains   */
/* `columns` on every selected row.  candidates may be None (= all).   */
/* Caller guarantees the row selection is non-empty.                   */
/* ------------------------------------------------------------------ */

static PyObject *
native_grid_supporting_heights(PyObject *self, PyObject *args)
{
    Py_buffer grid, rows, columns, out;
    PyObject *cand_obj;
    Py_buffer cand;
    int has_cand = 0;
    Py_ssize_t l, n, words;

    if (!PyArg_ParseTuple(args, "y*nnny*y*Ow*:grid_supporting_heights",
                          &grid, &l, &n, &words, &rows, &columns,
                          &cand_obj, &out))
        return NULL;
    if (get_optional_buffer(cand_obj, &cand, &has_cand) < 0) {
        PyBuffer_Release(&grid);
        PyBuffer_Release(&rows);
        PyBuffer_Release(&columns);
        PyBuffer_Release(&out);
        return NULL;
    }

    const unsigned char *base = (const unsigned char *)grid.buf;
    const unsigned char *rsel = (const unsigned char *)rows.buf;
    const unsigned char *cols = (const unsigned char *)columns.buf;
    const unsigned char *csel = has_cand ? (const unsigned char *)cand.buf
                                         : NULL;
    unsigned char *result = (unsigned char *)out.buf;

    memset(result, 0, (size_t)out.len);
    for (Py_ssize_t k = 0; k < l; k++) {
        if (csel != NULL && !test_bit(csel, k))
            continue;
        const unsigned char *slice = base + 8 * k * n * words;
        int ok = 1;
        for (Py_ssize_t i = 0; i < n && ok; i++) {
            if (!test_bit(rsel, i))
                continue;
            ok = is_subset_words(cols, slice + 8 * i * words, words);
        }
        if (ok) {
            Py_ssize_t w = k >> 6;
            store_word(result, w,
                       load_word(result, w) | (UINT64_C(1) << (k & 63)));
        }
    }

    PyBuffer_Release(&grid);
    PyBuffer_Release(&rows);
    PyBuffer_Release(&columns);
    PyBuffer_Release(&out);
    if (has_cand)
        PyBuffer_Release(&cand);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* grid_supporting_rows(grid, l, n, words, heights, columns,           */
/*                      candidates, out) -> None                       */
/* ------------------------------------------------------------------ */

static PyObject *
native_grid_supporting_rows(PyObject *self, PyObject *args)
{
    Py_buffer grid, heights, columns, out;
    PyObject *cand_obj;
    Py_buffer cand;
    int has_cand = 0;
    Py_ssize_t l, n, words;

    if (!PyArg_ParseTuple(args, "y*nnny*y*Ow*:grid_supporting_rows",
                          &grid, &l, &n, &words, &heights, &columns,
                          &cand_obj, &out))
        return NULL;
    if (get_optional_buffer(cand_obj, &cand, &has_cand) < 0) {
        PyBuffer_Release(&grid);
        PyBuffer_Release(&heights);
        PyBuffer_Release(&columns);
        PyBuffer_Release(&out);
        return NULL;
    }

    const unsigned char *base = (const unsigned char *)grid.buf;
    const unsigned char *hsel = (const unsigned char *)heights.buf;
    const unsigned char *cols = (const unsigned char *)columns.buf;
    const unsigned char *csel = has_cand ? (const unsigned char *)cand.buf
                                         : NULL;
    unsigned char *result = (unsigned char *)out.buf;

    memset(result, 0, (size_t)out.len);
    for (Py_ssize_t i = 0; i < n; i++) {
        if (csel != NULL && !test_bit(csel, i))
            continue;
        int ok = 1;
        for (Py_ssize_t k = 0; k < l && ok; k++) {
            if (!test_bit(hsel, k))
                continue;
            ok = is_subset_words(
                cols, base + 8 * (k * n + i) * words, words);
        }
        if (ok) {
            Py_ssize_t w = i >> 6;
            store_word(result, w,
                       load_word(result, w) | (UINT64_C(1) << (i & 63)));
        }
    }

    PyBuffer_Release(&grid);
    PyBuffer_Release(&heights);
    PyBuffer_Release(&columns);
    PyBuffer_Release(&out);
    if (has_cand)
        PyBuffer_Release(&cand);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* first_applicable_cutter(h_idx, r_idx, cols, n_cutters, words,       */
/*                         heights, rows, columns, start) -> int       */
/*                                                                     */
/* Scan the cutter list from `start` for the first cutter whose        */
/* height and row are members of the node and whose column mask        */
/* intersects the node's columns (Algorithm 2, line 6).                */
/* ------------------------------------------------------------------ */

static PyObject *
native_first_applicable_cutter(PyObject *self, PyObject *args)
{
    Py_buffer h_idx, r_idx, cols, heights, rows, columns;
    Py_ssize_t n_cutters, words, start;

    if (!PyArg_ParseTuple(args, "y*y*y*nny*y*y*n:first_applicable_cutter",
                          &h_idx, &r_idx, &cols, &n_cutters, &words,
                          &heights, &rows, &columns, &start))
        return NULL;

    const unsigned char *hs = (const unsigned char *)h_idx.buf;
    const unsigned char *rs = (const unsigned char *)r_idx.buf;
    const unsigned char *cs = (const unsigned char *)cols.buf;
    const unsigned char *node_h = (const unsigned char *)heights.buf;
    const unsigned char *node_r = (const unsigned char *)rows.buf;
    const unsigned char *node_c = (const unsigned char *)columns.buf;

    Py_ssize_t found = n_cutters;
    for (Py_ssize_t idx = start; idx < n_cutters; idx++) {
        if (!test_bit(node_h, load_i64(hs, idx)))
            continue;
        if (!test_bit(node_r, load_i64(rs, idx)))
            continue;
        const unsigned char *cutter_cols = cs + 8 * idx * words;
        for (Py_ssize_t w = 0; w < words; w++) {
            if (load_word(cutter_cols, w) & load_word(node_c, w)) {
                found = idx;
                break;
            }
        }
        if (found != n_cutters)
            break;
    }

    PyBuffer_Release(&h_idx);
    PyBuffer_Release(&r_idx);
    PyBuffer_Release(&cols);
    PyBuffer_Release(&heights);
    PyBuffer_Release(&rows);
    PyBuffer_Release(&columns);
    return PyLong_FromSsize_t(found);
}

/* ------------------------------------------------------------------ */
/* features() -> dict                                                  */
/* ------------------------------------------------------------------ */

static PyObject *
native_features(PyObject *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "{s:s, s:s, s:i}",
        "popcount", REPRO_POPCOUNT_IMPL,
        "simd", REPRO_SIMD,
        "big_endian", REPRO_BIG_ENDIAN);
}

static PyMethodDef native_methods[] = {
    {"fold_and", native_fold_and, METH_VARARGS,
     "AND-fold selected rows of a packed mask array into out."},
    {"fold_or", native_fold_or, METH_VARARGS,
     "OR-fold selected rows of a packed mask array into out."},
    {"popcounts", native_popcounts, METH_VARARGS,
     "Per-row popcounts of a packed mask array."},
    {"supersets_of", native_supersets_of, METH_VARARGS,
     "Row-index bitmask of rows containing a given mask."},
    {"and_many", native_and_many, METH_VARARGS,
     "Elementwise AND of two flat word blocks into out."},
    {"grid_fold_rows", native_grid_fold_rows, METH_VARARGS,
     "Per-row AND over selected heights of an (l, n, words) grid."},
    {"grid_fold_and", native_grid_fold_and, METH_VARARGS,
     "AND over a (heights x rows) sub-grid with early zero exit."},
    {"grid_supporting_heights", native_grid_supporting_heights, METH_VARARGS,
     "Heights whose slices contain the columns on every selected row."},
    {"grid_supporting_rows", native_grid_supporting_rows, METH_VARARGS,
     "Rows containing the columns on every selected height."},
    {"first_applicable_cutter", native_first_applicable_cutter, METH_VARARGS,
     "First cutter at or after start intersecting the node."},
    {"features", native_features, METH_NOARGS,
     "Compile-time feature flags (popcount impl, SIMD, endianness)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core.kernels._native",
    "C primitives for the packed-uint64 native bitset kernel.",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&native_module);
}
