"""Integer-backed bitset utilities.

Every dimension set in this library (a set of heights, rows, or columns)
is represented as a plain Python ``int`` used as a bitmask: bit ``i`` is
set when index ``i`` belongs to the set.  Python integers are arbitrary
precision, so a single ``&``/``|`` performs a whole-set intersection or
union in C, which is the performance substrate that makes pure-Python
closed-cube mining feasible.

The helpers here convert between masks and index collections and provide
the handful of set-algebra operations that the miners use in their inner
loops.  They are free functions (not a wrapper class) on purpose: keeping
the masks as raw ints avoids per-node object overhead in the search tree.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bit_count",
    "full_mask",
    "mask_of",
    "single_bit",
    "iter_bits",
    "indices",
    "is_subset",
    "intersects",
    "difference",
    "lowest_bit_index",
    "mask_from_bools",
    "bools_from_mask",
]


def bit_count(mask: int) -> int:
    """Return the number of elements in the set encoded by ``mask``."""
    return mask.bit_count()


def full_mask(n: int) -> int:
    """Return a mask with the ``n`` lowest bits set: the universe {0..n-1}."""
    if n < 0:
        raise ValueError(f"universe size must be non-negative, got {n}")
    return (1 << n) - 1


def mask_of(items: Iterable[int]) -> int:
    """Build a mask from an iterable of non-negative indices."""
    mask = 0
    for item in items:
        if item < 0:
            raise ValueError(f"bitset indices must be non-negative, got {item}")
        mask |= 1 << item
    return mask


def single_bit(index: int) -> int:
    """Return the mask containing exactly ``index``."""
    if index < 0:
        raise ValueError(f"bitset indices must be non-negative, got {index}")
    return 1 << index


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices present in ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def indices(mask: int) -> tuple[int, ...]:
    """Return the indices present in ``mask`` as an ascending tuple."""
    return tuple(iter_bits(mask))


def is_subset(sub: int, sup: int) -> bool:
    """Return True when every element of ``sub`` is in ``sup``."""
    return sub & ~sup == 0


def intersects(a: int, b: int) -> bool:
    """Return True when the two sets share at least one element."""
    return a & b != 0


def difference(a: int, b: int) -> int:
    """Return the set difference ``a \\ b`` as a mask."""
    return a & ~b


def lowest_bit_index(mask: int) -> int:
    """Return the smallest index in ``mask`` (which must be non-empty)."""
    if mask == 0:
        raise ValueError("empty bitset has no lowest bit")
    return (mask & -mask).bit_length() - 1


def mask_from_bools(flags: Iterable[bool]) -> int:
    """Build a mask whose bit ``i`` mirrors the truthiness of ``flags[i]``."""
    mask = 0
    for i, flag in enumerate(flags):
        if flag:
            mask |= 1 << i
    return mask


def bools_from_mask(mask: int, n: int) -> list[bool]:
    """Expand ``mask`` into a list of ``n`` booleans (bit ``i`` -> index ``i``)."""
    if n < 0:
        raise ValueError(f"universe size must be non-negative, got {n}")
    if mask >> n:
        raise ValueError(f"mask {mask:#x} has bits beyond universe size {n}")
    return [bool(mask >> i & 1) for i in range(n)]
