"""Monotone support-threshold constraints (Definition 3.3).

A frequent closed cube must satisfy three minimum sizes: ``minH`` on the
height axis, ``minR`` on rows and ``minC`` on columns.  All three are
monotone (anti-monotone in the usual itemset-mining sense): removing an
element from a dimension can only lower its support, so once a node in
the search tree drops below a threshold the whole branch is pruned.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cube import Cube

__all__ = ["Thresholds"]


@dataclass(frozen=True, slots=True)
class Thresholds:
    """Minimum sizes on the three axes of a frequent closed cube.

    ``min_volume`` is an optional fourth monotone constraint on the
    cube's cell count (the 3D lift of D-Miner's minimal-area
    constraint): a node's volume only shrinks down the search tree, so
    falling below it prunes the whole branch.  The default 1 makes it
    inert.
    """

    min_h: int = 1
    min_r: int = 1
    min_c: int = 1
    min_volume: int = 1

    def __post_init__(self) -> None:
        for name, value in (
            ("min_h", self.min_h),
            ("min_r", self.min_r),
            ("min_c", self.min_c),
            ("min_volume", self.min_volume),
        ):
            if not isinstance(value, int):
                raise TypeError(f"{name} must be an int, got {type(value).__name__}")
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    def satisfied_by(self, cube: Cube) -> bool:
        """True when the cube meets every minimum (supports and volume)."""
        return (
            cube.h_support >= self.min_h
            and cube.r_support >= self.min_r
            and cube.c_support >= self.min_c
            and cube.volume >= self.min_volume
        )

    def dominates(self, other: "Thresholds") -> bool:
        """True when this threshold set is looser-or-equal than ``other``.

        ``a.dominates(b)`` means every constraint of ``a`` is
        element-wise ``<=`` the matching constraint of ``b`` (all three
        axis minimums and ``min_volume``).  By threshold monotonicity
        the FCC result mined at ``a`` is then a superset of the result
        at ``b``: filtering the ``a``-result with
        :meth:`~repro.core.cube.Cube.satisfies` reproduces the
        ``b``-result exactly.  This is the lattice order behind the
        service's threshold-lattice result cache
        (:mod:`repro.service.cache`).
        """
        return (
            self.min_h <= other.min_h
            and self.min_r <= other.min_r
            and self.min_c <= other.min_c
            and self.min_volume <= other.min_volume
        )

    def as_tuple(self) -> tuple[int, int, int]:
        """``(min_h, min_r, min_c)`` in canonical axis order."""
        return (self.min_h, self.min_r, self.min_c)

    def to_dict(self) -> dict[str, int]:
        """All four constraints as a JSON-ready dict."""
        return {
            "min_h": self.min_h,
            "min_r": self.min_r,
            "min_c": self.min_c,
            "min_volume": self.min_volume,
        }

    @classmethod
    def from_dict(cls, payload: "dict | list | tuple | Thresholds") -> "Thresholds":
        """Rebuild from :meth:`to_dict` output (or a 3/4-tuple).

        Accepts the dict schema, an existing :class:`Thresholds`
        (returned unchanged), or a ``[min_h, min_r, min_c]`` /
        ``[min_h, min_r, min_c, min_volume]`` sequence — the wire shapes
        used by result JSON and the service API.
        """
        if isinstance(payload, Thresholds):
            return payload
        if isinstance(payload, (list, tuple)):
            if len(payload) == 3:
                return cls(*(int(v) for v in payload))
            if len(payload) == 4:
                h, r, c, volume = (int(v) for v in payload)
                return cls(h, r, c, min_volume=volume)
            raise ValueError(
                f"threshold sequence must have 3 or 4 entries, got {payload!r}"
            )
        unknown = set(payload) - {"min_h", "min_r", "min_c", "min_volume"}
        if unknown:
            raise ValueError(f"unknown threshold key(s) {sorted(unknown)}")
        return cls(
            int(payload.get("min_h", 1)),
            int(payload.get("min_r", 1)),
            int(payload.get("min_c", 1)),
            min_volume=int(payload.get("min_volume", 1)),
        )

    def permute(self, order: tuple[int, int, int]) -> "Thresholds":
        """Thresholds for a dataset transposed with the same axis ``order``.

        ``order[new_axis] == old_axis``, matching
        :meth:`repro.core.dataset.Dataset3D.transpose`.  The volume
        constraint is axis-free and carries over unchanged.
        """
        if sorted(order) != [0, 1, 2]:
            raise ValueError(f"order {order!r} is not a permutation of the 3 axes")
        values = self.as_tuple()
        return Thresholds(
            *(values[axis] for axis in order), min_volume=self.min_volume
        )

    def feasible_for_shape(self, shape: tuple[int, int, int]) -> bool:
        """True when a cube meeting the thresholds can exist in ``shape``."""
        return (
            self.min_h <= shape[0]
            and self.min_r <= shape[1]
            and self.min_c <= shape[2]
            and self.min_volume <= shape[0] * shape[1] * shape[2]
        )

    def __str__(self) -> str:
        text = f"minH={self.min_h}, minR={self.min_r}, minC={self.min_c}"
        if self.min_volume > 1:
            text += f", minVolume={self.min_volume}"
        return text
