"""Closure operators on 3D binary datasets.

These implement the paper's support-set operators (Definition 3.1):

* ``H(R' x C')`` — the maximal set of heights simultaneously containing
  the rows ``R'`` and columns ``C'`` (:func:`height_support`),
* ``R(H' x C')`` — :func:`row_support`,
* ``C(H' x R')`` — :func:`column_support`,

together with the closed-cube predicate of Definition 3.2 and a fixpoint
``close`` operator that grows a seed cube to a closed one.

All set arguments and return values are integer bitmasks
(see :mod:`repro.core.bitset`); the batch work — one fold or subset
sweep over the dataset's (height, row) mask grid per operator call —
runs on the dataset's kernel backend (:mod:`repro.core.kernels`).
"""

from __future__ import annotations

from .bitset import full_mask, is_subset, iter_bits
from .cube import Cube
from .dataset import Dataset3D

__all__ = [
    "ClosureCache",
    "resolve_closure_cache",
    "column_support",
    "row_support",
    "height_support",
    "is_all_ones",
    "is_closed_cube",
    "close",
]

#: Default entry budget for :class:`ClosureCache` — comfortably above the
#: ``l + n`` witness entries any dataset needs plus the support queries a
#: typical run issues, so eviction only triggers under an explicit bound.
DEFAULT_CACHE_ENTRIES = 1 << 16


class ClosureCache:
    """Bounded memoization for closure work, keyed on (axis, fingerprint).

    Two families of entries share one entry budget:

    * **Zero-witness entries** — keyed by an axis tag and the atom of one
      element outside a node.  CubeMiner's closure checks (Lemmas 4-5)
      ask, per outside element, "does it have a zero inside the node
      region?".  The exact node regions almost never repeat down the
      splitting tree, but the *witness* — the grid cell proving the
      answer was yes — survives nearly every region shrink, so the entry
      stores the last witness and revalidates it against the current
      region in O(1) bit operations.  A stale witness is recomputed and
      replaced (a miss); a missing element (no zero in the region) makes
      the check fail.
    * **Support entries** — keyed by an axis tag and the opposing pair of
      set fingerprints, memoizing the full ``H(R' x C')`` / ``R(H' x
      C')`` / ``C(H' x R')`` support sets for the closure operators.

    Eviction is FIFO (oldest entry of the family being inserted into),
    so a bounded cache degrades to recomputation — never to different
    answers.  ``hits`` / ``misses`` / ``evictions`` counters are folded
    into :class:`~repro.obs.metrics.MiningMetrics` by the miners.

    A cache binds lazily to the first dataset it serves and rebinds
    (dropping all entries) when handed a different one, so a run-scoped
    cache needs no explicit setup.
    """

    __slots__ = (
        "max_entries",
        "hits",
        "misses",
        "evictions",
        "_dataset",
        "_zeros",
        "_full_heights",
        "_full_rows",
        "_height_witness",
        "_row_witness",
        "_supports",
    )

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._dataset: Dataset3D | None = None
        self._zeros: list[list[int]] = []
        self._full_heights = 0
        self._full_rows = 0
        self._height_witness: dict[int, int] = {}
        self._row_witness: dict[int, int] = {}
        self._supports: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _bind(self, dataset: Dataset3D) -> None:
        universe = full_mask(dataset.n_columns)
        ones = dataset.ones_masks()
        self._zeros = [
            [universe & ~mask for mask in per_height] for per_height in ones
        ]
        self._full_heights = full_mask(dataset.n_heights)
        self._full_rows = full_mask(dataset.n_rows)
        self._height_witness.clear()
        self._row_witness.clear()
        self._supports.clear()
        self._dataset = dataset

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._height_witness.clear()
        self._row_witness.clear()
        self._supports.clear()

    def __len__(self) -> int:
        return (
            len(self._height_witness)
            + len(self._row_witness)
            + len(self._supports)
        )

    def counters(self) -> tuple[int, int, int]:
        """Snapshot of ``(hits, misses, evictions)`` — for delta folding."""
        return (self.hits, self.misses, self.evictions)

    def _make_room(self, target: dict) -> None:
        """Evict one oldest entry before inserting a new key into ``target``."""
        if len(self) < self.max_entries:
            return
        for entries in (target, self._height_witness, self._row_witness, self._supports):
            if entries:
                entries.pop(next(iter(entries)))
                self.evictions += 1
                return

    # ------------------------------------------------------------------
    # Witness-backed closure checks (Lemmas 4-5 / Lemma 1)
    # ------------------------------------------------------------------
    def height_set_closed(
        self, dataset: Dataset3D, heights: int, rows: int, columns: int
    ) -> bool:
        """Hcheck: True when no height outside ``heights`` covers R' x C'."""
        if self._dataset is not dataset:
            self._bind(dataset)
        zeros = self._zeros
        witness = self._height_witness
        hit = miss = 0
        closed = True
        for k in iter_bits(self._full_heights & ~heights):
            w = witness.get(k)
            if w is not None and rows >> w & 1 and zeros[k][w] & columns:
                hit += 1
                continue
            miss += 1
            per_height = zeros[k]
            for i in iter_bits(rows):
                if per_height[i] & columns:
                    if w is None:
                        self._make_room(witness)
                    witness[k] = i
                    break
            else:
                # Height k has no zero in R' x C': it supports the node,
                # so the node can never become height-closed.
                closed = False
                break
        self.hits += hit
        self.misses += miss
        return closed

    def row_set_closed(
        self, dataset: Dataset3D, heights: int, rows: int, columns: int
    ) -> bool:
        """Rcheck: True when no row outside ``rows`` covers H' x C'."""
        if self._dataset is not dataset:
            self._bind(dataset)
        zeros = self._zeros
        witness = self._row_witness
        hit = miss = 0
        closed = True
        for i in iter_bits(self._full_rows & ~rows):
            w = witness.get(i)
            if w is not None and heights >> w & 1 and zeros[w][i] & columns:
                hit += 1
                continue
            miss += 1
            for k in iter_bits(heights):
                if zeros[k][i] & columns:
                    if w is None:
                        self._make_room(witness)
                    witness[i] = k
                    break
            else:
                closed = False
                break
        self.hits += hit
        self.misses += miss
        return closed

    # ------------------------------------------------------------------
    # Memoized support operators
    # ------------------------------------------------------------------
    def _memoized(self, dataset: Dataset3D, key: tuple, compute) -> int:
        if self._dataset is not dataset:
            self._bind(dataset)
        supports = self._supports
        value = supports.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = compute()
        if key not in supports:
            self._make_room(supports)
        supports[key] = value
        return value

    def height_support(self, dataset: Dataset3D, rows: int, columns: int) -> int:
        return self._memoized(
            dataset,
            ("H", rows, columns),
            lambda: dataset.kernel.grid_supporting_heights(
                dataset.ones_grid(), rows, columns
            ),
        )

    def row_support(self, dataset: Dataset3D, heights: int, columns: int) -> int:
        return self._memoized(
            dataset,
            ("R", heights, columns),
            lambda: dataset.kernel.grid_supporting_rows(
                dataset.ones_grid(), heights, columns
            ),
        )

    def column_support(self, dataset: Dataset3D, heights: int, rows: int) -> int:
        return self._memoized(
            dataset,
            ("C", heights, rows),
            lambda: dataset.kernel.grid_fold_and(
                dataset.ones_grid(), heights, rows, dataset.n_columns
            ),
        )

    def __repr__(self) -> str:
        return (
            f"ClosureCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


def resolve_closure_cache(
    spec: "ClosureCache | int | None", *, default_entries: int = DEFAULT_CACHE_ENTRIES
) -> ClosureCache | None:
    """Normalize a miner's ``closure_cache`` argument.

    ``None`` builds a fresh default cache (memoization is on by
    default), a positive int bounds a fresh cache to that many entries,
    ``0`` (or any non-positive int) disables caching, and a
    :class:`ClosureCache` instance is used as-is (sharing/pre-warming).
    """
    if spec is None:
        return ClosureCache(max_entries=default_entries)
    if isinstance(spec, ClosureCache):
        return spec
    if spec <= 0:
        return None
    return ClosureCache(max_entries=spec)


def column_support(
    dataset: Dataset3D, heights: int, rows: int, *, cache: ClosureCache | None = None
) -> int:
    """Return ``C(R' x H')``: columns that are 1 on every (height, row) pair.

    For empty ``heights`` or ``rows`` the intersection runs over an empty
    family and therefore returns the full column universe; callers that
    need a different convention must special-case empty inputs.
    """
    if cache is not None:
        return cache.column_support(dataset, heights, rows)
    return dataset.kernel.grid_fold_and(
        dataset.ones_grid(), heights, rows, dataset.n_columns
    )


def height_support(
    dataset: Dataset3D, rows: int, columns: int, *, cache: ClosureCache | None = None
) -> int:
    """Return ``H(R' x C')``: heights whose slices are all-ones on R' x C'."""
    if cache is not None:
        return cache.height_support(dataset, rows, columns)
    return dataset.kernel.grid_supporting_heights(dataset.ones_grid(), rows, columns)


def row_support(
    dataset: Dataset3D, heights: int, columns: int, *, cache: ClosureCache | None = None
) -> int:
    """Return ``R(H' x C')``: rows that are all-ones on H' x C'."""
    if cache is not None:
        return cache.row_support(dataset, heights, columns)
    return dataset.kernel.grid_supporting_rows(dataset.ones_grid(), heights, columns)


def is_all_ones(
    dataset: Dataset3D, cube: Cube, *, cache: ClosureCache | None = None
) -> bool:
    """True when every cell covered by ``cube`` holds 1 (a *complete* cube)."""
    return is_subset(
        cube.columns, column_support(dataset, cube.heights, cube.rows, cache=cache)
    )


def is_closed_cube(
    dataset: Dataset3D, cube: Cube, *, cache: ClosureCache | None = None
) -> bool:
    """Definition 3.2: the cube is complete and maximal in all three axes.

    Empty cubes are never closed here: the paper's support thresholds are
    at least 1 in any meaningful configuration, and treating the empty
    cube as closed would only complicate every caller.
    """
    if cube.is_empty():
        return False
    if not is_all_ones(dataset, cube, cache=cache):
        return False
    return (
        cube.heights == height_support(dataset, cube.rows, cube.columns, cache=cache)
        and cube.rows == row_support(dataset, cube.heights, cube.columns, cache=cache)
        and cube.columns == column_support(dataset, cube.heights, cube.rows, cache=cache)
    )


def close(
    dataset: Dataset3D,
    cube: Cube,
    max_iterations: int = 64,
    *,
    cache: ClosureCache | None = None,
) -> Cube:
    """Grow ``cube`` to a fixpoint of the three support operators.

    The input must be complete (all ones); the result is then a closed
    cube containing it.  Each pass recomputes the three support sets from
    the current pair of the other two axes; the sets only ever grow, so
    the loop terminates.  ``max_iterations`` is a safety valve against
    implementation bugs, not a tuning knob.  ``cache`` memoizes the
    support queries — repeated closures over one dataset (e.g. RSM's
    Lemma-1 phase, result auditing) reuse each other's work.
    """
    if cube.is_empty():
        raise ValueError("cannot close an empty cube")
    if not is_all_ones(dataset, cube, cache=cache):
        raise ValueError("cannot close a cube that covers zero cells")
    heights, rows, columns = cube.heights, cube.rows, cube.columns
    for _ in range(max_iterations):
        new_heights = height_support(dataset, rows, columns, cache=cache)
        new_rows = row_support(dataset, new_heights, columns, cache=cache)
        new_columns = column_support(dataset, new_heights, new_rows, cache=cache)
        if (new_heights, new_rows, new_columns) == (heights, rows, columns):
            return Cube(heights, rows, columns)
        heights, rows, columns = new_heights, new_rows, new_columns
    raise RuntimeError("closure did not converge — this indicates a bug")
