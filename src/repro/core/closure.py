"""Closure operators on 3D binary datasets.

These implement the paper's support-set operators (Definition 3.1):

* ``H(R' x C')`` — the maximal set of heights simultaneously containing
  the rows ``R'`` and columns ``C'`` (:func:`height_support`),
* ``R(H' x C')`` — :func:`row_support`,
* ``C(H' x R')`` — :func:`column_support`,

together with the closed-cube predicate of Definition 3.2 and a fixpoint
``close`` operator that grows a seed cube to a closed one.

All set arguments and return values are integer bitmasks
(see :mod:`repro.core.bitset`); the batch work — one fold or subset
sweep over the dataset's (height, row) mask grid per operator call —
runs on the dataset's kernel backend (:mod:`repro.core.kernels`).
"""

from __future__ import annotations

from .bitset import is_subset
from .cube import Cube
from .dataset import Dataset3D

__all__ = [
    "column_support",
    "row_support",
    "height_support",
    "is_all_ones",
    "is_closed_cube",
    "close",
]


def column_support(dataset: Dataset3D, heights: int, rows: int) -> int:
    """Return ``C(R' x H')``: columns that are 1 on every (height, row) pair.

    For empty ``heights`` or ``rows`` the intersection runs over an empty
    family and therefore returns the full column universe; callers that
    need a different convention must special-case empty inputs.
    """
    return dataset.kernel.grid_fold_and(
        dataset.ones_grid(), heights, rows, dataset.n_columns
    )


def height_support(dataset: Dataset3D, rows: int, columns: int) -> int:
    """Return ``H(R' x C')``: heights whose slices are all-ones on R' x C'."""
    return dataset.kernel.grid_supporting_heights(dataset.ones_grid(), rows, columns)


def row_support(dataset: Dataset3D, heights: int, columns: int) -> int:
    """Return ``R(H' x C')``: rows that are all-ones on H' x C'."""
    return dataset.kernel.grid_supporting_rows(dataset.ones_grid(), heights, columns)


def is_all_ones(dataset: Dataset3D, cube: Cube) -> bool:
    """True when every cell covered by ``cube`` holds 1 (a *complete* cube)."""
    return is_subset(
        cube.columns, column_support(dataset, cube.heights, cube.rows)
    )


def is_closed_cube(dataset: Dataset3D, cube: Cube) -> bool:
    """Definition 3.2: the cube is complete and maximal in all three axes.

    Empty cubes are never closed here: the paper's support thresholds are
    at least 1 in any meaningful configuration, and treating the empty
    cube as closed would only complicate every caller.
    """
    if cube.is_empty():
        return False
    if not is_all_ones(dataset, cube):
        return False
    return (
        cube.heights == height_support(dataset, cube.rows, cube.columns)
        and cube.rows == row_support(dataset, cube.heights, cube.columns)
        and cube.columns == column_support(dataset, cube.heights, cube.rows)
    )


def close(dataset: Dataset3D, cube: Cube, max_iterations: int = 64) -> Cube:
    """Grow ``cube`` to a fixpoint of the three support operators.

    The input must be complete (all ones); the result is then a closed
    cube containing it.  Each pass recomputes the three support sets from
    the current pair of the other two axes; the sets only ever grow, so
    the loop terminates.  ``max_iterations`` is a safety valve against
    implementation bugs, not a tuning knob.
    """
    if cube.is_empty():
        raise ValueError("cannot close an empty cube")
    if not is_all_ones(dataset, cube):
        raise ValueError("cannot close a cube that covers zero cells")
    heights, rows, columns = cube.heights, cube.rows, cube.columns
    for _ in range(max_iterations):
        new_heights = height_support(dataset, rows, columns)
        new_rows = row_support(dataset, new_heights, columns)
        new_columns = column_support(dataset, new_heights, new_rows)
        if (new_heights, new_rows, new_columns) == (heights, rows, columns):
            return Cube(heights, rows, columns)
        heights, rows, columns = new_heights, new_rows, new_columns
    raise RuntimeError("closure did not converge — this indicates a bug")
