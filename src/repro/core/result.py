"""Mining-result container.

Every miner in the library returns a :class:`MiningResult`: the set of
frequent closed cubes plus provenance (algorithm name, thresholds,
dataset shape, wall-clock time, run counters).  Results compare as
*sets of cubes* regardless of discovery order, which is what the
cross-algorithm equivalence tests rely on.

Run counters live in :class:`MiningStats`: the always-on
:class:`~repro.obs.metrics.MiningMetrics` counter set plus a small
``extra`` dict of algorithm-specific values.  ``MiningStats`` keeps the
historical dict-style access (``result.stats["nodes_visited"]``,
``.items()``, ``in``) and adds a stable JSON schema via
:meth:`MiningStats.to_dict` / :meth:`MiningStats.from_dict`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, MutableMapping
from dataclasses import dataclass, field

from ..obs.metrics import MiningMetrics
from .constraints import Thresholds
from .cube import Cube
from .dataset import Dataset3D

__all__ = ["MiningStats", "MiningResult"]


@dataclass
class MiningStats(MutableMapping):
    """Counters of one mining run, with dict-style access.

    ``metrics`` holds the always-on counter set (``None`` for results
    rebuilt from legacy payloads that never carried one); ``extra``
    holds algorithm-specific values (``n_workers``, legacy key aliases,
    ...).  The mapping view is the union of all metric fields and the
    extras, with extras winning on key clashes.
    """

    #: Version tag of the :meth:`to_dict` JSON schema.
    SCHEMA_VERSION = 1

    metrics: MiningMetrics | None = None
    extra: dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Mapping protocol (backward-compatible dict-style access)
    # ------------------------------------------------------------------
    def _combined(self) -> dict[str, object]:
        data: dict[str, object] = (
            self.metrics.as_dict() if self.metrics is not None else {}
        )
        data.update(self.extra)
        return data

    def __getitem__(self, key: str) -> object:
        if key in self.extra:
            return self.extra[key]
        if self.metrics is not None and hasattr(self.metrics, key):
            return getattr(self.metrics, key)
        raise KeyError(key)

    def __setitem__(self, key: str, value: object) -> None:
        self.extra[key] = value

    def __delitem__(self, key: str) -> None:
        del self.extra[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._combined())

    def __len__(self) -> int:
        return len(self._combined())

    def __contains__(self, key: object) -> bool:
        return key in self.extra or (
            isinstance(key, str)
            and self.metrics is not None
            and hasattr(self.metrics, key)
        )

    # ------------------------------------------------------------------
    # Stable JSON schema
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Serialize with a stable, versioned schema."""
        return {
            "schema": self.SCHEMA_VERSION,
            "metrics": self.metrics.as_dict() if self.metrics is not None else None,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: "dict | MiningStats | None") -> "MiningStats":
        """Rebuild from :meth:`to_dict` output.

        Legacy flat dicts (pre-schema results, e.g. old JSON files or
        ad-hoc ``stats={...}`` constructions) load as ``extra`` so
        every historical key keeps resolving.
        """
        if payload is None:
            return cls()
        if isinstance(payload, MiningStats):
            return payload
        if "schema" in payload and "metrics" in payload:
            raw = payload.get("metrics")
            return cls(
                metrics=MiningMetrics.from_dict(raw) if raw is not None else None,
                extra=dict(payload.get("extra") or {}),
            )
        return cls(extra=dict(payload))


@dataclass
class MiningResult:
    """The outcome of one FCC mining run."""

    #: Version tag of the :meth:`to_json` payload schema.
    SCHEMA_VERSION = 1

    cubes: list[Cube]
    algorithm: str = "unknown"
    thresholds: Thresholds | None = None
    dataset_shape: tuple[int, int, int] | None = None
    elapsed_seconds: float = 0.0
    stats: MiningStats = field(default_factory=MiningStats)

    def __post_init__(self) -> None:
        # Canonicalize: drop duplicates, order deterministically.
        unique = {cube: None for cube in self.cubes}
        self.cubes = sorted(unique, key=Cube.sort_key)
        if not isinstance(self.stats, MiningStats):
            # Legacy callers pass plain dicts; keep them working.
            self.stats = MiningStats.from_dict(self.stats)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __contains__(self, cube: object) -> bool:
        return cube in set(self.cubes)

    def cube_set(self) -> frozenset[Cube]:
        """The result as an order-free set."""
        return frozenset(self.cubes)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def same_cubes(self, other: "MiningResult | Iterable[Cube]") -> bool:
        """True when both runs found exactly the same cubes."""
        other_set = (
            other.cube_set() if isinstance(other, MiningResult) else frozenset(other)
        )
        return self.cube_set() == other_set

    def difference(
        self, other: "MiningResult | Iterable[Cube]"
    ) -> tuple[frozenset[Cube], frozenset[Cube]]:
        """Return ``(only_in_self, only_in_other)``."""
        mine = self.cube_set()
        theirs = (
            other.cube_set() if isinstance(other, MiningResult) else frozenset(other)
        )
        return mine - theirs, theirs - mine

    # ------------------------------------------------------------------
    # Stable JSON round-trip (the service wire format)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Serialize to a JSON-ready dict with a stable, versioned schema.

        Cubes travel as raw ``[heights, rows, columns]`` bitmask triples
        (arbitrary-precision ints, which JSON represents exactly), so
        ``from_payload(result.to_payload())`` is a lossless round-trip:
        same cube set *and* order, same thresholds (including
        ``min_volume``), same :class:`MiningStats` content.  This is the
        shape service responses use — a library object and a service
        response are the same data.
        """
        return {
            "schema": self.SCHEMA_VERSION,
            "algorithm": self.algorithm,
            "thresholds": (
                self.thresholds.to_dict() if self.thresholds is not None else None
            ),
            "dataset_shape": (
                list(self.dataset_shape) if self.dataset_shape is not None else None
            ),
            "elapsed_seconds": self.elapsed_seconds,
            "stats": self.stats.to_dict(),
            "cubes": [
                [cube.heights, cube.rows, cube.columns] for cube in self.cubes
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MiningResult":
        """Rebuild a result from :meth:`to_payload` output."""
        schema = payload.get("schema")
        if schema != cls.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported MiningResult schema {schema!r} "
                f"(this build reads schema {cls.SCHEMA_VERSION})"
            )
        cubes = []
        for entry in payload.get("cubes") or []:
            if len(entry) != 3:
                raise ValueError(f"expected [h, r, c] masks, got {entry!r}")
            cubes.append(Cube(*(int(mask) for mask in entry)))
        raw_thresholds = payload.get("thresholds")
        shape = payload.get("dataset_shape")
        return cls(
            cubes=cubes,
            algorithm=str(payload.get("algorithm", "unknown")),
            thresholds=(
                Thresholds.from_dict(raw_thresholds)
                if raw_thresholds is not None
                else None
            ),
            dataset_shape=tuple(int(s) for s in shape) if shape else None,
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            stats=MiningStats.from_dict(payload.get("stats")),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """:meth:`to_payload` rendered as a JSON document."""
        import json

        return json.dumps(self.to_payload(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MiningResult":
        """Rebuild a result from :meth:`to_json` output."""
        import json

        return cls.from_payload(json.loads(text))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def format_table(self, dataset: Dataset3D | None = None) -> str:
        """Render the cubes one per line in the paper's notation."""
        lines = [
            f"# {self.algorithm}: {len(self.cubes)} FCC(s)"
            + (f" [{self.thresholds}]" if self.thresholds else "")
        ]
        lines.extend(cube.format(dataset) for cube in self.cubes)
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line run summary for logs and benchmark harnesses."""
        shape = (
            "x".join(str(s) for s in self.dataset_shape)
            if self.dataset_shape
            else "?"
        )
        return (
            f"{self.algorithm}: {len(self.cubes)} FCCs on {shape} "
            f"in {self.elapsed_seconds:.3f}s"
        )

    def __repr__(self) -> str:
        return f"MiningResult(algorithm={self.algorithm!r}, n_cubes={len(self.cubes)})"
