"""Mining-result container.

Every miner in the library returns a :class:`MiningResult`: the set of
frequent closed cubes plus provenance (algorithm name, thresholds,
dataset shape, wall-clock time, algorithm-specific counters).  Results
compare as *sets of cubes* regardless of discovery order, which is what
the cross-algorithm equivalence tests rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .constraints import Thresholds
from .cube import Cube
from .dataset import Dataset3D

__all__ = ["MiningResult"]


@dataclass
class MiningResult:
    """The outcome of one FCC mining run."""

    cubes: list[Cube]
    algorithm: str = "unknown"
    thresholds: Thresholds | None = None
    dataset_shape: tuple[int, int, int] | None = None
    elapsed_seconds: float = 0.0
    stats: dict[str, int | float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Canonicalize: drop duplicates, order deterministically.
        unique = {cube: None for cube in self.cubes}
        self.cubes = sorted(unique, key=Cube.sort_key)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __contains__(self, cube: object) -> bool:
        return cube in set(self.cubes)

    def cube_set(self) -> frozenset[Cube]:
        """The result as an order-free set."""
        return frozenset(self.cubes)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def same_cubes(self, other: "MiningResult | Iterable[Cube]") -> bool:
        """True when both runs found exactly the same cubes."""
        other_set = (
            other.cube_set() if isinstance(other, MiningResult) else frozenset(other)
        )
        return self.cube_set() == other_set

    def difference(
        self, other: "MiningResult | Iterable[Cube]"
    ) -> tuple[frozenset[Cube], frozenset[Cube]]:
        """Return ``(only_in_self, only_in_other)``."""
        mine = self.cube_set()
        theirs = (
            other.cube_set() if isinstance(other, MiningResult) else frozenset(other)
        )
        return mine - theirs, theirs - mine

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def format_table(self, dataset: Dataset3D | None = None) -> str:
        """Render the cubes one per line in the paper's notation."""
        lines = [
            f"# {self.algorithm}: {len(self.cubes)} FCC(s)"
            + (f" [{self.thresholds}]" if self.thresholds else "")
        ]
        lines.extend(cube.format(dataset) for cube in self.cubes)
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line run summary for logs and benchmark harnesses."""
        shape = (
            "x".join(str(s) for s in self.dataset_shape)
            if self.dataset_shape
            else "?"
        )
        return (
            f"{self.algorithm}: {len(self.cubes)} FCCs on {shape} "
            f"in {self.elapsed_seconds:.3f}s"
        )

    def __repr__(self) -> str:
        return f"MiningResult(algorithm={self.algorithm!r}, n_cubes={len(self.cubes)})"
