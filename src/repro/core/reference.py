"""Brute-force reference miner (the testing oracle).

This enumerates every pair of a height subset and a row subset, derives
the maximal column set with :func:`~repro.core.closure.column_support`,
and keeps the triple when it is closed and meets the thresholds.  It is
exponential in ``|H| + |R|`` and exists purely to validate the fast
miners on small tensors — keep inputs around 10 heights x 10 rows.
"""

from __future__ import annotations

import time
from itertools import combinations

from ..obs import (
    EventSink,
    MineDone,
    MineStart,
    MiningCancelled,
    MiningMetrics,
    resolve_progress,
)
from .bitset import bit_count, mask_of
from .closure import column_support, height_support, row_support
from .constraints import Thresholds
from .cube import Cube
from .dataset import Dataset3D
from .result import MiningResult, MiningStats

__all__ = ["reference_mine"]

#: Enumeration is 2^(|H|+|R|); beyond this the oracle refuses to run so a
#: mis-written test fails fast instead of hanging.
_MAX_ENUMERATED_BITS = 26

#: Candidates between two cancellation/deadline checks.
_CHECK_EVERY = 512


def reference_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    metrics: MiningMetrics | None = None,
    on_event: EventSink | None = None,
    progress=None,
    deadline: float | None = None,
) -> MiningResult:
    """Mine all FCCs by exhaustive subset enumeration.

    Correct by construction (it literally checks Definition 3.2 and 3.3
    for every candidate) and therefore the ground truth in tests.  The
    oracle shares :func:`repro.api.mine`'s instrumentation surface so
    long differential runs can be observed and deadline-bounded like
    any other algorithm.
    """
    l, n, _m = dataset.shape
    if l + n > _MAX_ENUMERATED_BITS:
        raise ValueError(
            f"reference miner enumerates 2^({l}+{n}) candidates; dataset too "
            "large for the oracle — use CubeMiner or RSM instead"
        )
    start = time.perf_counter()
    stats = metrics if metrics is not None else MiningMetrics()
    controller = resolve_progress(progress, deadline)
    if on_event is not None:
        on_event(
            MineStart(
                "reference",
                dataset.shape,
                thresholds.as_tuple() + (thresholds.min_volume,),
            )
        )
    found: set[Cube] = set()
    height_subsets = [
        mask_of(subset)
        for size in range(thresholds.min_h, l + 1)
        for subset in combinations(range(l), size)
    ]
    row_subsets = [
        mask_of(subset)
        for size in range(thresholds.min_r, n + 1)
        for subset in combinations(range(n), size)
    ]
    checked = 0
    total = len(height_subsets) * len(row_subsets)
    try:
        if controller is not None:
            controller.checkpoint(stats, phase="reference", done=0, total=total)
        for heights in height_subsets:
            for rows in row_subsets:
                checked += 1
                stats.nodes_visited += 1
                stats.kernel_ops += 1
                if controller is not None and not checked % _CHECK_EVERY:
                    controller.checkpoint(
                        stats, phase="reference", done=checked, total=total
                    )
                columns = column_support(dataset, heights, rows)
                if bit_count(columns) < thresholds.min_c:
                    continue
                # Maximality in the other two axes (closure conditions 1 & 3).
                stats.kernel_ops += 2
                if height_support(dataset, rows, columns) != heights:
                    continue
                if row_support(dataset, heights, columns) != rows:
                    continue
                cube = Cube(heights, rows, columns)
                if thresholds.satisfied_by(cube):
                    stats.leaves_emitted += 1
                    found.add(cube)
    except MiningCancelled as exc:
        elapsed = time.perf_counter() - start
        exc.metrics = stats
        exc.partial = MiningResult(
            cubes=list(found),
            algorithm="reference",
            thresholds=thresholds,
            dataset_shape=dataset.shape,
            elapsed_seconds=elapsed,
            stats=MiningStats(metrics=stats, extra={"candidates_checked": checked}),
        )
        if on_event is not None:
            on_event(MineDone("reference", len(exc.partial), elapsed, cancelled=True))
        raise
    result = MiningResult(
        cubes=list(found),
        algorithm="reference",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=MiningStats(metrics=stats, extra={"candidates_checked": checked}),
    )
    if on_event is not None:
        on_event(MineDone("reference", len(result), result.elapsed_seconds))
    return result
