"""Frequent closed hyper-cube patterns and their closure predicates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tensor import DatasetND

__all__ = ["PatternND", "axis_support", "is_closed_nd"]


@dataclass(frozen=True, slots=True)
class PatternND:
    """A closed hyper-cube: one ascending index tuple per axis."""

    indices: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        normalized = tuple(tuple(sorted(set(axis))) for axis in self.indices)
        object.__setattr__(self, "indices", normalized)

    @property
    def ndim(self) -> int:
        return len(self.indices)

    def support(self, axis: int) -> int:
        """Number of indices along ``axis``."""
        return len(self.indices[axis])

    @property
    def supports(self) -> tuple[int, ...]:
        return tuple(len(axis) for axis in self.indices)

    @property
    def volume(self) -> int:
        out = 1
        for axis in self.indices:
            out *= len(axis)
        return out

    def is_empty(self) -> bool:
        return any(len(axis) == 0 for axis in self.indices)

    def contains(self, other: "PatternND") -> bool:
        """True when ``other`` is a sub-block on every axis."""
        if other.ndim != self.ndim:
            return False
        return all(
            set(theirs) <= set(ours)
            for ours, theirs in zip(self.indices, other.indices)
        )

    def format(self, dataset: DatasetND | None = None) -> str:
        parts = []
        for axis, members in enumerate(self.indices):
            if dataset is not None:
                labels = dataset.axis_labels[axis]
                parts.append("".join(labels[i] for i in members))
            else:
                parts.append("{" + ",".join(str(i) for i in members) + "}")
        return " : ".join(parts) + ", " + ":".join(str(s) for s in self.supports)

    def __str__(self) -> str:
        return self.format()


def axis_support(data: np.ndarray, axis: int, block: PatternND) -> tuple[int, ...]:
    """Indices along ``axis`` whose slices are all-ones on the block.

    ``block`` supplies the index sets for every axis *except* ``axis``
    (its own entry there is ignored).
    """
    selector = [list(members) for members in block.indices]
    selector[axis] = list(range(data.shape[axis]))
    sub = data[np.ix_(*selector)]
    other_axes = tuple(a for a in range(data.ndim) if a != axis)
    hits = sub.all(axis=other_axes) if other_axes else sub
    return tuple(int(i) for i in np.flatnonzero(hits))


def is_closed_nd(dataset: DatasetND, pattern: PatternND) -> bool:
    """True when the pattern is all-ones and maximal along every axis."""
    if pattern.ndim != dataset.ndim or pattern.is_empty():
        return False
    block = dataset.data[np.ix_(*[list(m) for m in pattern.indices])]
    if not block.all():
        return False
    return all(
        axis_support(dataset.data, axis, pattern) == pattern.indices[axis]
        for axis in range(dataset.ndim)
    )
