"""Recursive slice mining: frequent closed hyper-cubes in rank-d tensors.

The RSM idea (Section 4 of the paper) iterates naturally: to mine a
rank-``d`` tensor, enumerate every subset of axis 0 that meets its
minimum size, AND the member slices into one rank-``(d-1)`` tensor
(the representative slice, generalized), mine *that* recursively, and
keep a combined pattern only when the enumerated subset is exactly the
axis-0 support of the sub-pattern (the Lemma-1 post-prune, which also
guarantees each pattern is produced exactly once).  The recursion
bottoms out at rank 2, where any 2D FCP miner applies — D-Miner by
default, as in the paper.

Correctness is the paper's RSM theorem applied inductively: a collapsed
cell is 1 iff every enumerated slice is 1 there, so closure inside the
collapsed tensor coincides with closure in the original restricted to
the subset, and the post-prune restores closure along the enumerated
axis.  The cost is exponential in every axis except the last two —
the same trade-off the paper describes for RSM, taken to rank d.

For rank 3 prefer :func:`repro.api.mine` (bitmask-specialized, with
CubeMiner available); this module exists for rank >= 4 and for
cross-checking the 3D code path against an independent implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import combinations
from typing import Sequence

import numpy as np

from ..fcp import FCPMiner, get_fcp_miner
from ..fcp.matrix import BinaryMatrix
from .pattern import PatternND, axis_support
from .tensor import DatasetND

__all__ = ["MiningResultND", "mine_nd", "oracle_mine_nd"]

#: Enumerated-axis sizes beyond this make the subset count explode;
#: refuse loudly rather than hang.
_MAX_ENUMERATED_AXIS = 20


@dataclass
class MiningResultND:
    """Outcome of a rank-d mining run."""

    patterns: list[PatternND]
    min_sizes: tuple[int, ...]
    dataset_shape: tuple[int, ...]
    elapsed_seconds: float = 0.0
    stats: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unique = {pattern: None for pattern in self.patterns}
        self.patterns = sorted(unique, key=lambda p: p.indices)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def pattern_set(self) -> frozenset[PatternND]:
        return frozenset(self.patterns)


def _check_min_sizes(shape: tuple[int, ...], min_sizes: Sequence[int]) -> tuple[int, ...]:
    sizes = tuple(int(s) for s in min_sizes)
    if len(sizes) != len(shape):
        raise ValueError(
            f"need one minimum size per axis: got {len(sizes)} for rank {len(shape)}"
        )
    if any(s < 1 for s in sizes):
        raise ValueError("minimum sizes must all be >= 1")
    return sizes


def mine_nd(
    dataset: DatasetND | np.ndarray,
    min_sizes: Sequence[int],
    *,
    fcp_miner: str | FCPMiner = "dminer",
) -> MiningResultND:
    """Mine all frequent closed hyper-cubes of a rank-d tensor.

    Parameters
    ----------
    dataset:
        A :class:`DatasetND` or anything convertible to one (rank >= 2).
    min_sizes:
        One minimum size per axis, in axis order.
    fcp_miner:
        The rank-2 base-case miner (registry name or instance).
    """
    if not isinstance(dataset, DatasetND):
        dataset = DatasetND(dataset)
    sizes = _check_min_sizes(dataset.shape, min_sizes)
    miner = get_fcp_miner(fcp_miner) if isinstance(fcp_miner, str) else fcp_miner
    for axis_size in dataset.shape[:-2]:
        if axis_size > _MAX_ENUMERATED_AXIS:
            raise ValueError(
                f"axis of size {axis_size} would need 2^{axis_size} subset "
                "enumerations; transpose the tensor so big axes come last"
            )
    start = time.perf_counter()
    stats = {"slices_enumerated": 0, "postprune_pruned": 0}
    feasible = all(s <= size for s, size in zip(sizes, dataset.shape))
    raw = _mine_array(dataset.data, sizes, miner, stats) if feasible else []
    return MiningResultND(
        patterns=[PatternND(p) for p in raw],
        min_sizes=sizes,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats=stats,
    )


def _mine_array(
    data: np.ndarray,
    min_sizes: tuple[int, ...],
    miner: FCPMiner,
    stats: dict[str, int],
) -> list[tuple[tuple[int, ...], ...]]:
    """Recursive core over raw arrays; returns tuples of index tuples."""
    if data.ndim == 2:
        matrix = BinaryMatrix.from_array(data)
        patterns = miner.mine(matrix, min_rows=min_sizes[0], min_columns=min_sizes[1])
        return [(p.row_indices(), p.column_indices()) for p in patterns]

    n_first = data.shape[0]
    found: list[tuple[tuple[int, ...], ...]] = []
    for size in range(min_sizes[0], n_first + 1):
        for subset in combinations(range(n_first), size):
            stats["slices_enumerated"] += 1
            collapsed = data[list(subset)].all(axis=0)
            for sub_pattern in _mine_array(collapsed, min_sizes[1:], miner, stats):
                # Post-prune (Lemma 1 generalized): keep only when the
                # subset is exactly the axis-0 support of the sub-block.
                probe = PatternND((subset, *sub_pattern))
                support = axis_support(data, 0, probe)
                if support == subset:
                    found.append((subset, *sub_pattern))
                else:
                    stats["postprune_pruned"] += 1
    return found


def oracle_mine_nd(
    dataset: DatasetND | np.ndarray, min_sizes: Sequence[int]
) -> MiningResultND:
    """Exhaustive rank-d oracle: enumerate subsets of every axis but the
    last, derive the last axis by support, keep closed combinations.

    Exponential in everything — tiny test tensors only.
    """
    if not isinstance(dataset, DatasetND):
        dataset = DatasetND(dataset)
    sizes = _check_min_sizes(dataset.shape, min_sizes)
    if sum(dataset.shape[:-1]) > 24:
        raise ValueError("oracle limited to ~24 enumerated indices total")
    start = time.perf_counter()
    data = dataset.data
    found: set[PatternND] = set()

    def recurse(axis: int, chosen: list[tuple[int, ...]]) -> None:
        if axis == data.ndim - 1:
            probe = PatternND((*chosen, tuple(range(data.shape[-1]))))
            last = axis_support(data, data.ndim - 1, probe)
            if len(last) < sizes[-1]:
                return
            candidate = PatternND((*chosen, last))
            for check_axis in range(data.ndim - 1):
                if (
                    axis_support(data, check_axis, candidate)
                    != candidate.indices[check_axis]
                ):
                    return
            found.add(candidate)
            return
        for size in range(sizes[axis], data.shape[axis] + 1):
            for subset in combinations(range(data.shape[axis]), size):
                recurse(axis + 1, chosen + [subset])

    if all(s <= size for s, size in zip(sizes, dataset.shape)):
        recurse(0, [])
    return MiningResultND(
        patterns=sorted(found, key=lambda p: p.indices),
        min_sizes=sizes,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
    )
