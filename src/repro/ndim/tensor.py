"""N-dimensional binary datasets (the 3D model generalized).

The paper generalizes 2D frequent closed patterns to 3D.  This
subpackage carries the construction one step further, to arbitrary
rank: a :class:`DatasetND` is a rank-``d`` boolean tensor with labeled
axes, and :mod:`repro.ndim.miner` finds all *frequent closed
hyper-cubes* — all-ones sub-tensors maximal along every axis, with a
minimum size per axis.

The 3D classes remain the primary, optimized API; DatasetND trades the
bitmask specialization for generality (it stores a numpy array and
derives what the recursive miner needs on the fly).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["DatasetND"]


class DatasetND:
    """An immutable rank-``d`` boolean tensor with labeled axes.

    Parameters
    ----------
    data:
        Anything convertible to a boolean numpy array of rank >= 2.
    axis_labels:
        Optional per-axis label sequences; defaults to ``x0_1, x0_2...``
        per axis index.
    """

    __slots__ = ("_data", "_axis_labels")

    def __init__(
        self,
        data: Sequence | np.ndarray,
        *,
        axis_labels: Sequence[Sequence[str]] | None = None,
    ) -> None:
        array = np.asarray(data)
        if array.ndim < 2:
            raise ValueError(f"expected rank >= 2, got rank {array.ndim}")
        if array.dtype != np.bool_:
            unique = np.unique(array)
            if not np.isin(unique, (0, 1)).all():
                raise ValueError("dataset cells must be boolean or 0/1")
            array = array.astype(bool)
        self._data = array
        self._data.setflags(write=False)
        if axis_labels is None:
            axis_labels = [
                [f"x{axis}_{i + 1}" for i in range(size)]
                for axis, size in enumerate(array.shape)
            ]
        if len(axis_labels) != array.ndim:
            raise ValueError(
                f"got {len(axis_labels)} label sequences for rank {array.ndim}"
            )
        checked: list[tuple[str, ...]] = []
        for axis, labels in enumerate(axis_labels):
            labels = tuple(str(label) for label in labels)
            if len(labels) != array.shape[axis]:
                raise ValueError(
                    f"axis {axis} has {array.shape[axis]} entries but "
                    f"{len(labels)} labels"
                )
            if len(set(labels)) != len(labels):
                raise ValueError(f"axis {axis} labels must be unique")
            checked.append(labels)
        self._axis_labels = tuple(checked)

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def axis_labels(self) -> tuple[tuple[str, ...], ...]:
        return self._axis_labels

    @property
    def density(self) -> float:
        if self._data.size == 0:
            return 0.0
        return float(self._data.mean())

    # ------------------------------------------------------------------
    def select(self, axis: int, indices: Sequence[int]) -> "DatasetND":
        """Restrict ``axis`` to ``indices`` (keeps rank)."""
        taken = np.take(self._data, list(indices), axis=axis).copy()
        labels = list(self._axis_labels)
        labels[axis] = tuple(self._axis_labels[axis][i] for i in indices)
        return DatasetND(taken, axis_labels=labels)

    def collapse_all(self, axis: int, indices: Sequence[int]) -> np.ndarray:
        """AND the slices of ``indices`` along ``axis`` (rank drops by 1).

        This is the representative-slice operation generalized: the
        result is 1 where every selected slice is 1.
        """
        if not indices:
            raise ValueError("need at least one index to collapse")
        taken = np.take(self._data, list(indices), axis=axis)
        return taken.all(axis=axis)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatasetND):
            return NotImplemented
        return (
            self.shape == other.shape
            and bool(np.array_equal(self._data, other._data))
            and self._axis_labels == other._axis_labels
        )

    def __hash__(self) -> int:
        return hash((self.shape, self._data.tobytes()))

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"DatasetND(shape={dims}, density={self.density:.3f})"
