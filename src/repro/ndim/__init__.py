"""Frequent closed hyper-cube mining in rank-d tensors (RSM generalized)."""

from .miner import MiningResultND, mine_nd, oracle_mine_nd
from .pattern import PatternND, axis_support, is_closed_nd
from .tensor import DatasetND

__all__ = [
    "MiningResultND",
    "mine_nd",
    "oracle_mine_nd",
    "PatternND",
    "axis_support",
    "is_closed_nd",
    "DatasetND",
]
