"""Brute-force 2D closed-pattern oracle for tests.

Enumerates every row subset, closes it to a formal concept, and keeps
the concepts meeting the thresholds.  Exponential in the row count —
test inputs only.
"""

from __future__ import annotations

from itertools import combinations

from ..core.bitset import bit_count, mask_of
from .base import Pattern2D
from .matrix import BinaryMatrix

__all__ = ["oracle_mine_2d"]

_MAX_ROWS = 18


def oracle_mine_2d(
    matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
) -> list[Pattern2D]:
    """All 2D FCPs by exhaustive row-subset enumeration (ground truth)."""
    n, _m = matrix.shape
    if n > _MAX_ROWS:
        raise ValueError(f"2D oracle limited to {_MAX_ROWS} rows, got {n}")
    found: set[Pattern2D] = set()
    for size in range(min_rows, n + 1):
        for subset in combinations(range(n), size):
            rows = mask_of(subset)
            columns = matrix.support_columns(rows)
            if bit_count(columns) < min_columns:
                continue
            if matrix.support_rows(columns) != rows:
                continue
            found.add(Pattern2D(rows, columns))
    return sorted(found, key=Pattern2D.sort_key)
