"""CHARM-style vertical closed-itemset mining.

Zaki & Hsiao's CHARM (SDM 2002) explores an itemset-tidset (IT) search
tree.  Sibling pairs ``(Xi, t(Xi))`` and ``(Xj, t(Xj))`` are combined
and one of four tidset relations fires:

1. ``t(Xi) == t(Xj)`` — Xj is absorbed into Xi (same closure);
2. ``t(Xi) ⊂ t(Xj)`` — Xi grows by Xj's items but Xj survives;
3. ``t(Xi) ⊃ t(Xj)`` — Xj is absorbed and the union starts a child class;
4. incomparable — the union starts a child class.

Candidate closed sets are checked against a tidset-keyed map for
subsumption before being reported.  Items are processed in increasing
support order, the heuristic CHARM uses to maximize absorption.

The implementation works on row bitmasks (tidsets) and column bitmasks
(itemsets); ``min_rows`` is the classic minimum support and
``min_columns`` a minimum pattern length filter applied at emission.
"""

from __future__ import annotations

from ..core.bitset import bit_count, full_mask, is_subset
from .base import FCPMiner, Pattern2D
from .matrix import BinaryMatrix

__all__ = ["Charm", "charm_mine"]


def charm_mine(
    matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
) -> list[Pattern2D]:
    """Mine all 2D FCPs with the CHARM IT-tree exploration."""
    if min_rows < 1 or min_columns < 1:
        raise ValueError("minimum supports must be >= 1")
    n, m = matrix.shape
    if n < min_rows or m < min_columns:
        return []

    # closed candidates keyed by tidset: tidset -> largest itemset seen.
    closed_by_tidset: dict[int, int] = {}

    def record(itemset: int, tidset: int) -> None:
        current = closed_by_tidset.get(tidset, 0)
        # Two itemsets with the same tidset share one closure; keep the union.
        closed_by_tidset[tidset] = current | itemset

    # The closure of the empty itemset: columns present in every row.
    # CHARM's IT-tree only reaches itemsets containing >= 1 item, so the
    # top concept is seeded explicitly when it is frequent.
    all_rows = full_mask(n)
    top_intent = matrix.support_columns(all_rows)
    if top_intent and bit_count(all_rows) >= min_rows:
        record(top_intent, all_rows)

    frequent_items = [
        (1 << j, matrix.column_rows(j))
        for j in range(m)
        if bit_count(matrix.column_rows(j)) >= min_rows
    ]
    # Increasing support order maximizes property-1/2 absorptions.
    frequent_items.sort(key=lambda pair: bit_count(pair[1]))

    def explore(nodes: list[tuple[int, int]]) -> None:
        """Process one class of sibling IT-pairs (itemset, tidset)."""
        index = 0
        while index < len(nodes):
            itemset, tidset = nodes[index]
            children: list[tuple[int, int]] = []
            sibling = index + 1
            while sibling < len(nodes):
                other_itemset, other_tidset = nodes[sibling]
                union_itemset = itemset | other_itemset
                union_tidset = tidset & other_tidset
                if tidset == other_tidset:
                    # Property 1: same closure — absorb the sibling.
                    nodes.pop(sibling)
                    itemset = union_itemset
                    children = [
                        (child_items | other_itemset, child_tids)
                        for child_items, child_tids in children
                    ]
                elif is_subset(tidset, other_tidset):
                    # Property 2: Xi's closure includes Xj's items.
                    itemset = union_itemset
                    children = [
                        (child_items | other_itemset, child_tids)
                        for child_items, child_tids in children
                    ]
                    sibling += 1
                else:
                    if bit_count(union_tidset) >= min_rows:
                        if is_subset(other_tidset, tidset):
                            # Property 3: sibling absorbed into the child.
                            nodes.pop(sibling)
                        else:
                            # Property 4: plain child, sibling survives.
                            sibling += 1
                        children.append((union_itemset, union_tidset))
                    else:
                        sibling += 1
            if children:
                explore(children)
            if not _subsumed(itemset, tidset):
                record(itemset, tidset)
            index += 1

    def _subsumed(itemset: int, tidset: int) -> bool:
        known = closed_by_tidset.get(tidset)
        return known is not None and is_subset(itemset, known)

    explore(list(frequent_items))

    results = []
    for tidset, itemset in closed_by_tidset.items():
        # The map may hold non-maximal itemsets superseded later under the
        # same tidset; recompute the closure to be exact, then dedupe.
        closure = matrix.support_columns(tidset)
        if bit_count(closure) >= min_columns and matrix.support_rows(closure) == tidset:
            results.append(Pattern2D(tidset, closure))
    return sorted(set(results), key=Pattern2D.sort_key)


class Charm(FCPMiner):
    """Class facade over :func:`charm_mine`."""

    name = "charm"

    def mine(
        self, matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
    ) -> list[Pattern2D]:
        return charm_mine(matrix, min_rows, min_columns)
