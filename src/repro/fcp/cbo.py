"""Close-by-One: canonical feature-enumeration closed-pattern mining.

Kuznetsov's Close-by-One (CbO) enumerates formal concepts by extending
column sets in ascending order and applying a canonicity test: a child
closure is kept only when it adds no column smaller than the generator.
Every closed pattern is produced exactly once, with no duplicate
detection structure.  This is the library's simplest provably-correct
fast 2D miner and doubles as a CLOSET/CHARM-style *feature enumeration*
baseline: efficient when columns are few, degrading as the column count
grows (the motivation for row enumeration, cf. CARPENTER).
"""

from __future__ import annotations

from ..core.bitset import bit_count, full_mask
from .base import FCPMiner, Pattern2D
from .matrix import BinaryMatrix

__all__ = ["CloseByOne", "cbo_mine"]


def cbo_mine(
    matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
) -> list[Pattern2D]:
    """Mine all 2D FCPs with the Close-by-One canonical enumeration."""
    if min_rows < 1 or min_columns < 1:
        raise ValueError("minimum supports must be >= 1")
    n, m = matrix.shape
    if n < min_rows or m < min_columns:
        return []

    found: list[Pattern2D] = []

    def emit(extent: int, intent: int) -> None:
        if bit_count(intent) >= min_columns:
            found.append(Pattern2D(extent, intent))

    root_extent = full_mask(n)
    root_intent = matrix.support_columns(root_extent)
    emit(root_extent, root_intent)

    # Iterative DFS; each item resumes a node's column scan at `j`.
    stack: list[tuple[int, int, int]] = [(root_extent, root_intent, 0)]
    while stack:
        extent, intent, j = stack.pop()
        if j >= m:
            continue
        stack.append((extent, intent, j + 1))
        if intent >> j & 1:
            continue
        child_extent = extent & matrix.column_rows(j)
        if bit_count(child_extent) < min_rows:
            continue
        child_intent = matrix.support_columns(child_extent)
        # Canonicity: reject closures that add a column below the generator.
        if child_intent & ~intent & ((1 << j) - 1):
            continue
        emit(child_extent, child_intent)
        stack.append((child_extent, child_intent, j + 1))
    return found


class CloseByOne(FCPMiner):
    """Class facade over :func:`cbo_mine`."""

    name = "cbo"

    def mine(
        self, matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
    ) -> list[Pattern2D]:
        return cbo_mine(matrix, min_rows, min_columns)
