"""Shared types for the 2D frequent-closed-pattern miners.

A 2D FCP over a binary matrix is a pair ``(rows, columns)`` such that
the sub-matrix is all ones and maximal on both axes — exactly the 2D
specialization of the paper's closed cube.  Every 2D miner in this
package returns :class:`Pattern2D` objects closed in *both* dimensions
(the supporting row set of a closed itemset is itself maximal, so any
closed-itemset algorithm qualifies), which is what RSM's post-pruning
phase requires.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.bitset import bit_count, indices
from .matrix import BinaryMatrix

__all__ = ["Pattern2D", "FCPMiner", "check_pattern"]


@dataclass(frozen=True, slots=True)
class Pattern2D:
    """A frequent closed 2D pattern: row and column bitmasks."""

    rows: int
    columns: int

    @property
    def row_support(self) -> int:
        return bit_count(self.rows)

    @property
    def column_support(self) -> int:
        return bit_count(self.columns)

    def row_indices(self) -> tuple[int, ...]:
        return indices(self.rows)

    def column_indices(self) -> tuple[int, ...]:
        return indices(self.columns)

    def sort_key(self) -> tuple[int, int]:
        return (self.rows, self.columns)

    def format(self) -> str:
        """Paper notation, e.g. ``r1r3 : c1c2c3, 2 : 3``."""
        rs = "".join(f"r{i + 1}" for i in self.row_indices())
        cs = "".join(f"c{j + 1}" for j in self.column_indices())
        return f"{rs} : {cs}, {self.row_support} : {self.column_support}"

    def __str__(self) -> str:
        return self.format()


class FCPMiner(abc.ABC):
    """Interface of every 2D frequent-closed-pattern miner."""

    #: Short name used in results, the registry and benchmarks.
    name: str = "abstract"

    @abc.abstractmethod
    def mine(
        self, matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
    ) -> list[Pattern2D]:
        """Return all FCPs with at least ``min_rows`` rows and
        ``min_columns`` columns, closed on both axes, in any order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def check_pattern(matrix: BinaryMatrix, pattern: Pattern2D) -> bool:
    """True when ``pattern`` is an all-ones, bi-maximal sub-matrix.

    Used in tests and by defensive callers; not on any hot path.
    """
    if pattern.rows == 0 or pattern.columns == 0:
        return False
    for i in pattern.row_indices():
        if pattern.columns & ~matrix.row_mask(i):
            return False
    return (
        matrix.support_rows(pattern.columns) == pattern.rows
        and matrix.support_columns(pattern.rows) == pattern.columns
    )
