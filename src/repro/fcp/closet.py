"""CLOSET-style FP-tree closed-itemset mining.

Pei, Han and Mao's CLOSET (DMKD 2000) mines closed itemsets by
depth-first *pattern growth* over an FP-tree: a prefix tree of the
transactions with items ordered by descending frequency, plus header
links threading equal items together.  For each frequent item (least
frequent first) the conditional transaction base is projected, the
items common to all of it are absorbed into the prefix's closure, and
the process recurses.

This implementation keeps CLOSET's architecture — FP-tree construction,
header tables, conditional projection, common-item absorption — and
uses a tidset-keyed closure check for the final subsumption test (the
role of CLOSET's result-tree).  As everywhere in this package, rows are
transactions and columns are items; ``min_rows`` is the support
threshold and ``min_columns`` a pattern-length filter at emission.

It completes the substrate family: D-Miner (dense/cutter), Close-by-One
(canonical feature enumeration), CHARM (vertical tidsets), CARPENTER
(row enumeration) and CLOSET (pattern growth) — the five classic
strategies the paper's related-work section surveys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.bitset import bit_count, full_mask, iter_bits
from .base import FCPMiner, Pattern2D
from .matrix import BinaryMatrix

__all__ = ["Closet", "closet_mine"]


@dataclass
class _Node:
    """One FP-tree node: an item, a count, and the rows that passed."""

    item: int
    parent: "_Node | None" = None
    count: int = 0
    rows: int = 0
    children: dict[int, "_Node"] = field(default_factory=dict)


class _FPTree:
    """An FP-tree over (row-mask annotated) transactions."""

    def __init__(self) -> None:
        self.root = _Node(item=-1)
        #: item -> list of nodes holding that item (the header table).
        self.header: dict[int, list[_Node]] = {}

    def insert(self, items: list[int], rows: int, count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item=item, parent=node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            child.rows |= rows
            node = child

    def conditional_base(self, item: int) -> list[tuple[list[int], int, int]]:
        """Prefix paths of ``item``: (items, rows, count) per path."""
        base = []
        for node in self.header.get(item, ()):
            path: list[int] = []
            walker = node.parent
            while walker is not None and walker.item != -1:
                path.append(walker.item)
                walker = walker.parent
            path.reverse()
            base.append((path, node.rows, node.count))
        return base


def closet_mine(
    matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
) -> list[Pattern2D]:
    """Mine all 2D FCPs by FP-tree pattern growth (CLOSET-style)."""
    if min_rows < 1 or min_columns < 1:
        raise ValueError("minimum supports must be >= 1")
    n, m = matrix.shape
    if n < min_rows or m < min_columns:
        return []

    closed_by_tidset: dict[int, int] = {}

    def record(itemset: int, tidset: int) -> None:
        closed_by_tidset[tidset] = closed_by_tidset.get(tidset, 0) | itemset

    # The closure of the empty prefix: items in every transaction.
    all_rows = full_mask(n)
    top = matrix.support_columns(all_rows)
    if top:
        record(top, all_rows)

    def grow(
        transactions: list[tuple[list[int], int, int]],
        prefix_items: int,
        prefix_rows: int,
    ) -> None:
        """Pattern-grow from one conditional transaction base."""
        # Count item supports in this base.
        support: dict[int, int] = {}
        rows_of: dict[int, int] = {}
        for items, rows, count in transactions:
            for item in items:
                support[item] = support.get(item, 0) + count
                rows_of[item] = rows_of.get(item, 0) | rows
        frequent = [i for i, s in support.items() if s >= min_rows]
        # CLOSET optimization: items appearing in every transaction of
        # the base belong to the prefix's closure — absorb them at once.
        # The prefix itself is recorded even when nothing frequent
        # remains: it is a (generator of a) closed set in its own right.
        total = sum(count for _items, _rows, count in transactions)
        common = [i for i in frequent if support[i] == total]
        common_mask = 0
        for item in common:
            common_mask |= 1 << item
        merged_prefix = prefix_items | common_mask
        if common_mask:
            # Rows supporting prefix+common are exactly the base's rows
            # (each common item occurs in every base transaction).  At
            # the root this differs from prefix_rows: all-zero rows
            # support the empty prefix but no item.
            base_rows = 0
            for _items, rows, _count in transactions:
                base_rows |= rows
            record(merged_prefix, base_rows)
        else:
            record(merged_prefix, prefix_rows)
        if not frequent:
            return

        remaining = [i for i in frequent if support[i] != total]
        # Build the conditional FP-tree over the remaining items,
        # descending-frequency order inside transactions.
        order = sorted(remaining, key=lambda i: (-support[i], i))
        rank = {item: pos for pos, item in enumerate(order)}
        tree = _FPTree()
        for items, rows, count in transactions:
            kept = sorted(
                (i for i in items if i in rank), key=rank.__getitem__
            )
            if kept:
                tree.insert(kept, rows, count)
        # Grow each remaining item, least frequent first (CLOSET's order).
        for item in reversed(order):
            item_rows = rows_of[item] & prefix_rows
            if bit_count(item_rows) < min_rows:
                continue
            base = tree.conditional_base(item)
            grow(base, merged_prefix | (1 << item), item_rows)

    initial = [
        (list(iter_bits(matrix.row_mask(i))), 1 << i, 1)
        for i in range(n)
        if matrix.row_mask(i)
    ]
    grow(initial, 0, all_rows)

    results = []
    for tidset, _itemset in closed_by_tidset.items():
        closure = matrix.support_columns(tidset)
        if (
            bit_count(closure) >= min_columns
            and bit_count(tidset) >= min_rows
            and matrix.support_rows(closure) == tidset
        ):
            results.append(Pattern2D(tidset, closure))
    return sorted(set(results), key=Pattern2D.sort_key)


class Closet(FCPMiner):
    """Class facade over :func:`closet_mine`."""

    name = "closet"

    def mine(
        self, matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
    ) -> list[Pattern2D]:
        return closet_mine(matrix, min_rows, min_columns)
