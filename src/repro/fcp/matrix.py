"""2D binary matrices for the frequent-closed-pattern substrate.

RSM's phase 2 runs a 2D FCP miner on each *representative slice* — an
``n x m`` boolean matrix obtained by ANDing height slices together.  To
avoid round-tripping through numpy in that hot path, a
:class:`BinaryMatrix` stores one column-bitmask per row and can be built
directly from masks (:meth:`BinaryMatrix.from_row_masks`) or from any
array-like (:meth:`BinaryMatrix.from_array`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.bitset import full_mask, indices
from ..core.kernels import Kernel, PackedBufferError, resolve_kernel

__all__ = ["BinaryMatrix", "PackedBufferError"]


class BinaryMatrix:
    """An ``n x m`` boolean matrix stored as per-row column bitmasks.

    The batch support operations run on a kernel backend
    (:mod:`repro.core.kernels`); representative slices inherit their
    dataset's kernel.  The kernel never affects values, so equality and
    hashing ignore it.
    """

    __slots__ = ("_row_masks", "_n_rows", "_n_columns", "_column_rows", "_kernel_spec", "_kernel", "_packed_rows")

    def __init__(
        self,
        row_masks: Sequence[int],
        n_columns: int,
        *,
        kernel: str | Kernel | None = None,
    ) -> None:
        universe = full_mask(n_columns)
        masks = list(row_masks)
        for i, mask in enumerate(masks):
            if mask < 0 or mask & ~universe:
                raise ValueError(
                    f"row {i} mask {mask:#x} has bits outside {n_columns} columns"
                )
        self._row_masks: list[int] | None = masks
        self._n_rows = len(masks)
        self._n_columns = n_columns
        self._column_rows: list[int] | None = None
        self._kernel_spec = kernel
        self._kernel: Kernel | None = None
        self._packed_rows = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_row_masks(
        cls,
        row_masks: Sequence[int],
        n_columns: int,
        *,
        kernel: str | Kernel | None = None,
    ) -> "BinaryMatrix":
        """Build from per-row column bitmasks (no copy semantics promised)."""
        return cls(row_masks, n_columns, kernel=kernel)

    @classmethod
    def from_packed(
        cls,
        handle,
        n_columns: int,
        *,
        kernel: str | Kernel,
    ) -> "BinaryMatrix":
        """Build from a kernel-native mask-array handle without unpacking.

        The hot-path constructor for representative slices: the handle
        (e.g. :meth:`repro.core.kernels.Kernel.intersect_rows` output)
        becomes the matrix's ``packed_rows()`` directly, and the plain
        int row masks materialize lazily only if a caller needs them.
        The handle's geometry is validated against ``n_columns`` through
        :meth:`repro.core.kernels.Kernel.check_packed` — a cheap shape /
        stray-bit check, not a per-row unpack — so a malformed buffer
        (e.g. a corrupted shared-memory segment) raises
        :class:`~repro.core.kernels.PackedBufferError` instead of
        silently yielding garbage patterns.
        """
        resolved = resolve_kernel(kernel)
        matrix = cls.__new__(cls)
        matrix._row_masks = None
        matrix._n_rows = resolved.check_packed(handle, n_columns)
        matrix._n_columns = n_columns
        matrix._column_rows = None
        matrix._kernel_spec = kernel
        matrix._kernel = resolved
        matrix._packed_rows = handle
        return matrix

    @classmethod
    def from_array(cls, array, *, kernel: str | Kernel | None = None) -> "BinaryMatrix":
        """Build from a rank-2 array-like of 0/1 or bool values."""
        data = np.asarray(array)
        if data.ndim != 2:
            raise ValueError(f"expected a rank-2 matrix, got rank {data.ndim}")
        data = data.astype(bool)
        n, m = data.shape
        masks = []
        for i in range(n):
            packed = np.packbits(data[i], bitorder="little").tobytes()
            masks.append(int.from_bytes(packed, "little"))
        return cls(masks, m, kernel=kernel)

    # ------------------------------------------------------------------
    # Kernel backend
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        """The bitset backend serving this matrix (resolved lazily)."""
        if self._kernel is None:
            self._kernel = resolve_kernel(self._kernel_spec)
        return self._kernel

    def packed_rows(self):
        """Kernel-native handle over the row masks (built once)."""
        if self._packed_rows is None:
            self._packed_rows = self.kernel.pack_masks(
                self._row_masks, self._n_columns
            )
        return self._packed_rows

    def _masks(self) -> list[int]:
        """The int row masks, materialized from the handle if needed."""
        if self._row_masks is None:
            self._row_masks = self.kernel.unpack_masks(self._packed_rows)
        return self._row_masks

    # ------------------------------------------------------------------
    # Shape / access
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return self._n_columns

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n_rows, self._n_columns)

    def row_mask(self, i: int) -> int:
        """Column bitmask of the one-cells in row ``i``."""
        return self._masks()[i]

    def row_masks(self) -> list[int]:
        """All row masks (a fresh list; the matrix stays immutable)."""
        return list(self._masks())

    def zeros_mask(self, i: int) -> int:
        """Column bitmask of the zero-cells in row ``i``."""
        return full_mask(self._n_columns) & ~self._masks()[i]

    def cell(self, i: int, j: int) -> bool:
        return bool(self._masks()[i] >> j & 1)

    def column_rows(self, j: int) -> int:
        """Row bitmask of the one-cells in column ``j`` (the tidset).

        Computed lazily for all columns on first use — the vertical
        miners (CHARM-style) work in this orientation.
        """
        if self._column_rows is None:
            cols = [0] * self._n_columns
            for i, mask in enumerate(self._masks()):
                row_bit = 1 << i
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    cols[low.bit_length() - 1] |= row_bit
                    remaining ^= low
            self._column_rows = cols
        return self._column_rows[j]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        total = self.n_rows * self._n_columns
        if total == 0:
            return 0.0
        return sum(self.kernel.popcounts(self.packed_rows())) / total

    def support_columns(self, rows: int) -> int:
        """Columns that are 1 on every row of the ``rows`` bitmask."""
        return self.kernel.fold_and(
            self.packed_rows(), self._n_columns, select=rows
        )

    def support_rows(self, columns: int) -> int:
        """Rows whose mask contains every column of ``columns``."""
        return self.kernel.supersets_of(self.packed_rows(), columns)

    def to_array(self) -> np.ndarray:
        """Expand back to a boolean numpy array."""
        out = np.zeros(self.shape, dtype=bool)
        for i, mask in enumerate(self._masks()):
            for j in indices(mask):
                out[i, j] = True
        return out

    # ------------------------------------------------------------------
    # Pickling (drop kernel-native caches; keep the kernel by name)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        spec = self._kernel_spec
        return {
            "row_masks": self._masks(),
            "n_columns": self._n_columns,
            "kernel": spec.name if isinstance(spec, Kernel) else spec,
        }

    def __setstate__(self, state: dict) -> None:
        self._row_masks = state["row_masks"]
        self._n_rows = len(state["row_masks"])
        self._n_columns = state["n_columns"]
        self._column_rows = None
        self._kernel_spec = state.get("kernel")
        self._kernel = None
        self._packed_rows = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryMatrix):
            return NotImplemented
        return (
            self._n_columns == other._n_columns
            and self._masks() == other._masks()
        )

    def __hash__(self) -> int:
        return hash((self._n_columns, tuple(self._masks())))

    def __repr__(self) -> str:
        return f"BinaryMatrix(shape={self.shape}, density={self.density:.3f})"
