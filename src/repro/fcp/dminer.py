"""D-Miner: cutter-based 2D closed-pattern mining.

This reimplements the algorithm of Besson, Robardet and Boulicaut
("Constraint-based mining of formal concepts in transactional data",
PAKDD 2004) that the paper plugs into RSM's phase 2.  It is the exact
2D specialization of CubeMiner's splitting scheme:

* one cutter per row that contains zeros, holding that row's zero
  columns;
* a node ``(R', C')`` is split by the first applicable cutter
  ``(x, Y)`` into a *row son* ``(R' \\ {x}, C')`` and a *column son*
  ``(R', C' \\ Y)``;
* the row son is pruned when ``minR`` fails or when ``x`` already cut
  the node's path through a column branch (the 2D middle-track check —
  it would be column-unclosed);
* the column son is pruned when ``minC`` fails or when a row outside
  ``R'`` has no zero inside the new column set (row-closure check).

A node surviving every cutter is an all-ones sub-matrix closed on both
axes.  D-Miner keeps the supporting row set of each pattern during the
search, which is precisely why the paper selects it for RSM: the row
sets feed the 3D height-closure post-pruning directly.
"""

from __future__ import annotations

from ..core.bitset import bit_count, full_mask, is_subset
from .base import FCPMiner, Pattern2D
from .matrix import BinaryMatrix

__all__ = ["DMiner", "dminer_mine", "build_cutters_2d"]


def build_cutters_2d(matrix: BinaryMatrix) -> list[tuple[int, int]]:
    """Return the 2D cutter list ``[(row, zero_column_mask), ...]``.

    One cutter per row holding at least one zero, in ascending row
    order (the 2D analogue of the paper's Table 3 ordering).
    """
    cutters = []
    for i in range(matrix.n_rows):
        zeros = matrix.zeros_mask(i)
        if zeros:
            cutters.append((i, zeros))
    return cutters


def dminer_mine(
    matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
) -> list[Pattern2D]:
    """Mine all 2D FCPs of ``matrix`` with the D-Miner splitting scheme."""
    if min_rows < 1 or min_columns < 1:
        raise ValueError("minimum supports must be >= 1")
    n, m = matrix.shape
    if n < min_rows or m < min_columns:
        return []
    cutters = build_cutters_2d(matrix)
    n_cutters = len(cutters)

    found: list[Pattern2D] = []
    # Work items: (rows, columns, cutter_index, row_track).
    stack: list[tuple[int, int, int, int]] = [
        (full_mask(n), full_mask(m), 0, 0)
    ]
    push = stack.append
    pop = stack.pop
    while stack:
        rows, columns, index, track = pop()
        while index < n_cutters:
            cutter_row, cutter_zeros = cutters[index]
            if rows >> cutter_row & 1 and columns & cutter_zeros:
                break
            index += 1
        else:
            found.append(Pattern2D(rows, columns))
            continue

        row_bit = 1 << cutter_row
        next_index = index + 1

        # Row son (R' \ {x}, C'): minR + track check (column closure).
        son_rows = rows & ~row_bit
        if bit_count(son_rows) >= min_rows and not row_bit & track:
            push((son_rows, columns, next_index, track))

        # Column son (R', C' \ Y): minC + row-closure check — no row
        # outside R' may be all-ones on the new column set, i.e. the
        # supporting rows of C' \ Y must all lie inside R' (one kernel
        # subset sweep over the row-mask array).
        son_columns = columns & ~cutter_zeros
        if bit_count(son_columns) >= min_columns and is_subset(
            matrix.support_rows(son_columns), rows
        ):
            push((rows, son_columns, next_index, track | row_bit))
    return found


class DMiner(FCPMiner):
    """Class facade over :func:`dminer_mine` (the RSM default substrate)."""

    name = "dminer"

    def mine(
        self, matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
    ) -> list[Pattern2D]:
        return dminer_mine(matrix, min_rows, min_columns)
