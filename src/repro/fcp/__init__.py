"""2D frequent-closed-pattern substrate.

Five interchangeable miners (all return patterns closed on both axes):

* :class:`DMiner` — the paper's RSM substrate; cutter-based splitting.
* :class:`CloseByOne` — canonical feature enumeration.
* :class:`Charm` — CHARM-style vertical IT-tree search.
* :class:`Carpenter` — CARPENTER-style row enumeration.
* :class:`Closet` — CLOSET-style FP-tree pattern growth.

``get_fcp_miner(name)`` resolves a miner by its registry name.
"""

from .base import FCPMiner, Pattern2D, check_pattern
from .carpenter import Carpenter, carpenter_mine
from .cbo import CloseByOne, cbo_mine
from .charm import Charm, charm_mine
from .closet import Closet, closet_mine
from .dminer import DMiner, dminer_mine
from .matrix import BinaryMatrix
from .oracle import oracle_mine_2d

__all__ = [
    "FCPMiner",
    "Pattern2D",
    "check_pattern",
    "BinaryMatrix",
    "DMiner",
    "dminer_mine",
    "CloseByOne",
    "cbo_mine",
    "Charm",
    "charm_mine",
    "Closet",
    "closet_mine",
    "Carpenter",
    "carpenter_mine",
    "oracle_mine_2d",
    "FCP_MINERS",
    "get_fcp_miner",
]

#: Registry of 2D miners by name.
FCP_MINERS = {
    miner.name: miner for miner in (DMiner, CloseByOne, Charm, Carpenter, Closet)
}


def get_fcp_miner(name: str) -> FCPMiner:
    """Instantiate a 2D FCP miner from its registry name."""
    try:
        return FCP_MINERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown 2D miner {name!r}; choose from {sorted(FCP_MINERS)}"
        ) from None
