"""CARPENTER-style row-enumeration closed-pattern mining.

Pan, Cong and Tung's CARPENTER (KDD 2003) targets "long columns, few
rows" data (microarrays) by enumerating *row* sets instead of column
sets: the closed pattern of a row combination is the set of columns
shared by all of them.  This implementation enumerates row sets with
the same canonical closure test Close-by-One uses on columns — each
closed pattern is generated exactly once, when its lexicographically
smallest generating row set is visited — plus CARPENTER's two classic
prunes (support infeasibility and empty intent).

``min_rows`` prunes are applied on emission (row sets only grow down
the tree), ``min_columns`` prunes cut whole branches (intents only
shrink).
"""

from __future__ import annotations

from ..core.bitset import bit_count, full_mask
from .base import FCPMiner, Pattern2D
from .matrix import BinaryMatrix

__all__ = ["Carpenter", "carpenter_mine"]


def carpenter_mine(
    matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
) -> list[Pattern2D]:
    """Mine all 2D FCPs by canonical row-set enumeration."""
    if min_rows < 1 or min_columns < 1:
        raise ValueError("minimum supports must be >= 1")
    n, m = matrix.shape
    if n < min_rows or m < min_columns:
        return []

    found: list[Pattern2D] = []

    def emit(rows: int, intent: int) -> None:
        if bit_count(rows) >= min_rows and bit_count(intent) >= min_columns:
            found.append(Pattern2D(rows, intent))

    # Top concept: all columns, supported by the rows containing them all.
    # (Row enumeration only reaches non-empty row sets, so concepts are
    # seeded from singletons below; the full-column concept falls out of
    # support_rows of each closure — no special casing needed.)
    stack: list[tuple[int, int, int]] = []
    root_rows = 0
    root_intent = full_mask(m)
    stack.append((root_rows, root_intent, 0))
    while stack:
        rows, intent, i = stack.pop()
        if i >= n:
            continue
        stack.append((rows, intent, i + 1))
        if rows >> i & 1:
            # Row already absorbed by a previous closure: re-adding it
            # would regenerate the same concept.
            continue
        child_intent = intent & matrix.row_mask(i)
        if bit_count(child_intent) < min_columns:
            continue
        # Closure on rows: every row containing the child intent.
        child_rows = matrix.support_rows(child_intent)
        # Canonicity: the closure must not pull in a row below generator i
        # that the parent had not already absorbed.
        if child_rows & ~rows & ((1 << i) - 1):
            continue
        emit(child_rows, child_intent)
        stack.append((child_rows, child_intent, i + 1))
    return found


class Carpenter(FCPMiner):
    """Class facade over :func:`carpenter_mine`."""

    name = "carpenter"

    def mine(
        self, matrix: BinaryMatrix, min_rows: int = 1, min_columns: int = 1
    ) -> list[Pattern2D]:
        return carpenter_mine(matrix, min_rows, min_columns)
