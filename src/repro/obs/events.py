"""Typed structured mining events.

A miner emits events into an *event sink* — any callable taking one
event — passed as ``mine(..., on_event=sink)``.  Events are small
``NamedTuple`` records (cheap to build, so a sink costs little even on
hot paths; with no sink attached nothing is ever constructed):

* :class:`MineStart` / :class:`MineDone` — run lifecycle; ``MineDone``
  is also emitted (with ``cancelled=True``) when a run is cancelled.
* :class:`NodeEvent` — one CubeMiner tree node visited.
* :class:`PruneEvent` — one candidate rejected, with the branch and the
  prune rule that fired (``reason`` names the
  :class:`~repro.obs.metrics.MiningMetrics` counter, e.g.
  ``"pruned_left_track"``; RSM's Lemma-1 discards use
  ``"postprune_discards"``).
* :class:`SliceEvent` — one RSM representative slice mined.
* :class:`TaskFailed` / :class:`TaskRetried` / :class:`PoolRestarted` /
  :class:`CheckpointWritten` — fault-tolerance lifecycle of the
  supervised parallel drivers (:mod:`repro.parallel.supervisor`); these
  fire on the driver side, so they reach sinks even for pool runs.

:class:`CollectingSink` gathers events in memory for tests and
analysis; :func:`null_sink` discards them (used by the overhead guard).
Events also serialize to JSON lines (:func:`event_to_dict` /
:func:`event_from_dict`) — the wire format of the service daemon's
per-job event journal (:mod:`repro.service.jobs`).
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Union

__all__ = [
    "MineStart",
    "MineDone",
    "NodeEvent",
    "PruneEvent",
    "SliceEvent",
    "TaskFailed",
    "TaskRetried",
    "PoolRestarted",
    "CheckpointWritten",
    "MiningEvent",
    "EventSink",
    "CollectingSink",
    "null_sink",
    "event_to_dict",
    "event_from_dict",
]


class MineStart(NamedTuple):
    """A mining run began."""

    algorithm: str
    dataset_shape: tuple[int, int, int]
    thresholds: tuple[int, int, int, int]  # (min_h, min_r, min_c, min_volume)

    kind = "start"


class MineDone(NamedTuple):
    """A mining run finished (or was cancelled)."""

    algorithm: str
    n_cubes: int
    elapsed_seconds: float
    cancelled: bool = False

    kind = "done"


class NodeEvent(NamedTuple):
    """CubeMiner visited one node of the splitting tree."""

    heights: int
    rows: int
    columns: int
    cutter_index: int  # index of the first applicable cutter; == len(Z) at leaves
    is_leaf: bool

    kind = "node"


class PruneEvent(NamedTuple):
    """A candidate son (or combined RSM pattern) was discarded."""

    branch: str  # "left" | "middle" | "right" | "postprune"
    reason: str  # MiningMetrics counter name, e.g. "pruned_height_unclosed"
    heights: int
    rows: int
    columns: int

    kind = "prune"


class SliceEvent(NamedTuple):
    """RSM mined one representative slice."""

    heights: int       # base-dimension subset mask
    n_patterns: int    # 2D FCPs found on the slice
    n_kept: int        # patterns surviving Lemma-1 post-pruning

    kind = "slice"


class TaskFailed(NamedTuple):
    """One attempt of a supervised parallel chunk failed."""

    chunk: int         # chunk index within the run's dispatch order
    attempt: int       # 0-based attempt number that failed
    cause: str         # "exception" | "timeout" | "pool-broken"
    error: str         # repr of the underlying error, if any

    kind = "task-failed"


class TaskRetried(NamedTuple):
    """A failed chunk was requeued for another attempt."""

    chunk: int
    attempt: int           # the attempt number about to run
    delay_seconds: float   # backoff applied before the retry

    kind = "task-retried"


class PoolRestarted(NamedTuple):
    """The worker pool was torn down and respawned (or abandoned)."""

    restarts: int      # cumulative restarts so far in this run
    cause: str         # "pool-broken" | "timeout" | "degraded-inline"

    kind = "pool-restart"


class CheckpointWritten(NamedTuple):
    """One completed chunk was appended to the checkpoint journal."""

    chunk: int
    n_cubes: int
    path: str

    kind = "checkpoint"


MiningEvent = Union[
    MineStart,
    MineDone,
    NodeEvent,
    PruneEvent,
    SliceEvent,
    TaskFailed,
    TaskRetried,
    PoolRestarted,
    CheckpointWritten,
]

#: An event sink is any callable accepting one :data:`MiningEvent`.
EventSink = Callable[[MiningEvent], None]


class CollectingSink:
    """An event sink that appends every event to :attr:`events`."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[MiningEvent] = []

    def __call__(self, event: MiningEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[MiningEvent]:
        """All collected events with the given ``kind`` tag."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


def null_sink(event: MiningEvent) -> None:
    """Discard the event — a no-op sink for overhead measurement."""


# ----------------------------------------------------------------------
# JSON-line serialization
# ----------------------------------------------------------------------
_EVENT_TYPES: dict[str, type] = {
    cls.kind: cls  # type: ignore[attr-defined]
    for cls in (
        MineStart,
        MineDone,
        NodeEvent,
        PruneEvent,
        SliceEvent,
        TaskFailed,
        TaskRetried,
        PoolRestarted,
        CheckpointWritten,
    )
}


def event_to_dict(event: MiningEvent) -> dict:
    """Serialize one event to a JSON-ready dict.

    The ``kind`` tag travels with the fields, so a stream of these
    dicts (one JSON line per event) is self-describing and can be
    rebuilt with :func:`event_from_dict`.  Tuple fields (shapes,
    thresholds) become lists — JSON has no tuples — and are restored on
    the way back.
    """
    payload = {"kind": event.kind}
    for name, value in event._asdict().items():
        payload[name] = list(value) if isinstance(value, tuple) else value
    return payload


def event_from_dict(payload: dict) -> MiningEvent:
    """Rebuild a typed event from :func:`event_to_dict` output."""
    kind = payload.get("kind")
    try:
        cls = _EVENT_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None
    kwargs = {}
    for field in cls.__annotations__:
        if field not in payload:
            continue
        value = payload[field]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[field] = value
    return cls(**kwargs)
