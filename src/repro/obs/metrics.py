"""Always-on mining counters.

:class:`MiningMetrics` is the single counter set every miner in the
library writes into while it runs: CubeMiner's search-tree counters
(nodes, sons, the per-lemma prune rules of Lemmas 2-5), RSM's slice and
post-prune counters (Lemma 1), and coarse kernel-operation tallies.
The counters are plain integer attributes on a dataclass — incrementing
them costs one attribute store, so they stay enabled on every run; the
paper's prune-rule effectiveness becomes a first-class result instead
of a debug-only re-run (``trace_tree`` remains for full per-node trees
on small inputs).

Parallel drivers merge the per-worker counter sets back into the
parent's with :meth:`MiningMetrics.merge`, so a distributed run reports
the same totals a sequential run would.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["MiningMetrics", "ChaosCounters", "PRUNE_FIELDS"]

#: Counter fields that count prune-rule hits in CubeMiner's tree, in the
#: order (thresholds, Lemma 2, Lemma 3, Lemma 4, Lemma 5).
PRUNE_FIELDS = (
    "pruned_min_h",
    "pruned_min_r",
    "pruned_min_c",
    "pruned_min_volume",
    "pruned_left_track",
    "pruned_middle_track",
    "pruned_height_unclosed",
    "pruned_row_unclosed",
)

#: Fields merged with ``max`` instead of ``+`` (high-water marks).
_MAX_FIELDS = frozenset({"max_stack_depth"})


@dataclass
class MiningMetrics:
    """Counter set for one mining run (or one aggregated parallel run).

    All fields are cumulative counts except ``max_stack_depth`` (a
    high-water mark) and ``n_cutters`` (the size of the cutter list the
    run used).  A single instance may be passed to ``mine(...,
    metrics=)`` to observe a run in flight or to accumulate several
    runs into one tally.
    """

    # -- CubeMiner search tree -----------------------------------------
    n_cutters: int = 0
    nodes_visited: int = 0
    leaves_emitted: int = 0
    sons_left: int = 0
    sons_middle: int = 0
    sons_right: int = 0
    pruned_min_h: int = 0
    pruned_min_r: int = 0
    pruned_min_c: int = 0
    pruned_min_volume: int = 0
    pruned_left_track: int = 0        # Lemma 2
    pruned_middle_track: int = 0      # Lemma 3
    pruned_height_unclosed: int = 0   # Lemma 4 (Hcheck)
    pruned_row_unclosed: int = 0      # Lemma 5 (Rcheck)
    max_stack_depth: int = 0
    cutters_built: int = 0
    # -- RSM phases ----------------------------------------------------
    rs_slices_mined: int = 0
    fcp_patterns: int = 0
    postprune_checked: int = 0
    postprune_discards: int = 0       # Lemma 1
    # -- substrate / parallel ------------------------------------------
    kernel_ops: int = 0
    # Kernel auto-selection degradations observed while resolving this
    # run's backend (REPRO_KERNEL named an unavailable kernel, e.g.
    # ``native`` without the built C extension, and resolution fell
    # back to numpy).  Zero on every run whose requested backend ran.
    kernel_fallbacks: int = 0
    workers_merged: int = 0
    # Driver-side transport/shard counters: incremented once per run by
    # the parallel drivers (never per worker attach, so clean and
    # fault-recovered runs of one config report identical totals).
    shm_datasets_published: int = 0
    shm_copy_fallbacks: int = 0
    shard_merges: int = 0
    shard_merge_dropped: int = 0
    # -- closure-memoization cache (repro.core.closure.ClosureCache) ---
    closure_cache_hits: int = 0
    closure_cache_misses: int = 0
    closure_cache_evictions: int = 0
    # -- streaming / out-of-core (repro.stream) ------------------------
    deltas_applied: int = 0
    cubes_patched: int = 0
    subsets_remined: int = 0
    stream_chunks_read: int = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, int]:
        """All counters as a plain ``{field: value}`` dict."""
        return dict(vars(self))

    #: Stable-schema alias used by :class:`~repro.core.result.MiningStats`.
    to_dict = as_dict

    def prune_counts(self) -> dict[str, int]:
        """The CubeMiner prune-rule counters (Figure 1's categories)."""
        return {name: getattr(self, name) for name in PRUNE_FIELDS}

    def total_pruned(self) -> int:
        """Sum of all CubeMiner prune-rule hits."""
        return sum(getattr(self, name) for name in PRUNE_FIELDS)

    # ------------------------------------------------------------------
    # Construction / aggregation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict) -> "MiningMetrics":
        """Rebuild from :meth:`as_dict` output; unknown keys are ignored
        and missing keys default to zero (forward/backward compatible).
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in known})

    def merge(self, other: "MiningMetrics") -> "MiningMetrics":
        """Fold another counter set into this one (in place).

        Counters add; high-water marks take the max.  Used by the
        parallel drivers to aggregate worker metrics into the parent's.
        """
        for f in fields(self):
            theirs = getattr(other, f.name)
            if f.name in _MAX_FIELDS:
                setattr(self, f.name, max(getattr(self, f.name), theirs))
            else:
                setattr(self, f.name, getattr(self, f.name) + theirs)
        return self

    def copy(self) -> "MiningMetrics":
        """An independent snapshot of the current counter values."""
        return MiningMetrics(**self.as_dict())


@dataclass
class ChaosCounters:
    """Service-hardening counters: what the runtime survived.

    One shared instance is threaded through the registry, cache, mmap
    store and job manager of a :class:`~repro.service.app.ServiceApp`,
    surfaces in ``GET /health`` under ``"chaos"``, and is stamped into
    every served result's ``stats.extra["chaos"]`` — so load shedding,
    retries, quarantines and corruption recoveries are first-class
    observability, not log lines.
    """

    #: Submissions rejected by admission control (HTTP 429).
    jobs_rejected: int = 0
    #: Failed attempts requeued with backoff (retry budget spent).
    jobs_retried: int = 0
    #: Poison jobs moved to ``quarantined/`` after exhausting retries.
    jobs_quarantined: int = 0
    #: Stuck workers killed by the heartbeat watchdog.
    watchdog_kills: int = 0
    #: Verify-on-read failures (checksum/fingerprint mismatches).
    corruption_detected: int = 0
    #: Corrupt store entries evicted (degraded to cache misses).
    corruption_evicted: int = 0
    #: Orphaned temp files swept on store open.
    stale_temps_swept: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))

    to_dict = as_dict

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosCounters":
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in payload.items() if k in known})

    def merge(self, other: "ChaosCounters") -> "ChaosCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self
