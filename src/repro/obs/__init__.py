"""Observability substrate: metrics, events, progress, cancellation.

Every miner keeps a :class:`MiningMetrics` counter set up to date while
it runs (always on — plain attribute increments), optionally emits
typed events into an ``on_event`` sink, and honours a
:class:`ProgressController` for periodic progress callbacks,
cooperative cancellation and wall-clock deadlines.  See
``docs/observability.md`` for the full tour.
"""

from .events import (
    CheckpointWritten,
    CollectingSink,
    EventSink,
    MineDone,
    MineStart,
    MiningEvent,
    NodeEvent,
    PoolRestarted,
    PruneEvent,
    SliceEvent,
    TaskFailed,
    TaskRetried,
    event_from_dict,
    event_to_dict,
    null_sink,
)
from .metrics import PRUNE_FIELDS, ChaosCounters, MiningMetrics
from .progress import (
    MiningCancelled,
    ProgressController,
    ProgressUpdate,
    resolve_progress,
)

__all__ = [
    "MiningMetrics",
    "ChaosCounters",
    "PRUNE_FIELDS",
    "MineStart",
    "MineDone",
    "NodeEvent",
    "PruneEvent",
    "SliceEvent",
    "TaskFailed",
    "TaskRetried",
    "PoolRestarted",
    "CheckpointWritten",
    "MiningEvent",
    "EventSink",
    "CollectingSink",
    "null_sink",
    "event_to_dict",
    "event_from_dict",
    "MiningCancelled",
    "ProgressController",
    "ProgressUpdate",
    "resolve_progress",
]
