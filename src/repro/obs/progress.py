"""Progress reporting, cooperative cancellation and deadlines.

A :class:`ProgressController` is threaded into a mining run via
``mine(..., progress=)``.  The hot loops call :meth:`checkpoint`
periodically (every :attr:`check_every` CubeMiner nodes, every RSM
slice, every parallel chunk); the checkpoint

* raises :class:`MiningCancelled` when :meth:`cancel` was called or the
  wall-clock deadline has passed, and
* invokes the ``on_progress`` callback (rate-limited to one call per
  ``min_interval`` seconds) with a :class:`ProgressUpdate` snapshot.

Cancellation is cooperative: the miner unwinds at the next checkpoint,
attaching a :class:`~repro.core.result.MiningResult` with the cubes and
metrics gathered so far to ``MiningCancelled.partial`` — a cancelled
run still yields partial telemetry.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports obs)
    from ..core.result import MiningResult
    from .metrics import MiningMetrics

__all__ = [
    "MiningCancelled",
    "ProgressUpdate",
    "ProgressController",
    "resolve_progress",
]


class MiningCancelled(RuntimeError):
    """A mining run was cancelled (explicitly or by deadline).

    Attributes
    ----------
    reason:
        Human-readable cause (``"cancelled by caller"`` or
        ``"deadline of Ns exceeded"``).
    partial:
        A :class:`~repro.core.result.MiningResult` holding the cubes
        found and the metrics accumulated before cancellation (``None``
        only when raised outside a miner).
    metrics:
        The live :class:`~repro.obs.metrics.MiningMetrics` of the
        cancelled run, also reachable as ``partial.stats.metrics``.
    """

    def __init__(
        self,
        reason: str = "cancelled",
        *,
        partial: "MiningResult | None" = None,
        metrics: "MiningMetrics | None" = None,
    ) -> None:
        super().__init__(reason)
        self.reason = reason
        self.partial = partial
        self.metrics = metrics
        #: Internal relay: the raw cubes a hot loop had found when the
        #: checkpoint fired; the owning driver converts these into
        #: :attr:`partial` before the exception escapes ``mine()``.
        self.partial_cubes: list = []


class ProgressUpdate(NamedTuple):
    """One progress snapshot handed to the ``on_progress`` callback."""

    phase: str               # e.g. "cubeminer", "rsm", "parallel-rsm"
    done: int                # work units finished (nodes, slices, chunks)
    total: int | None        # known total, or None for open-ended search
    elapsed_seconds: float
    metrics: "MiningMetrics"

    def format(self) -> str:
        """Render as a one-line status message."""
        of_total = f"/{self.total}" if self.total is not None else ""
        return (
            f"{self.phase}: {self.done}{of_total} units, "
            f"{self.metrics.leaves_emitted} cube(s), "
            f"{self.elapsed_seconds:.1f}s elapsed"
        )


class ProgressController:
    """Cooperative progress/cancellation handle for one mining run.

    Parameters
    ----------
    on_progress:
        Optional callback receiving :class:`ProgressUpdate` snapshots,
        at most once per ``min_interval`` seconds.
    check_every:
        CubeMiner checkpoint granularity in tree nodes (the RSM slice
        loop and the parallel chunk loop checkpoint on every item
        regardless).
    min_interval:
        Minimum seconds between two ``on_progress`` invocations.
    deadline:
        Optional wall-clock budget in seconds, measured from
        construction; once exceeded, the next checkpoint raises
        :class:`MiningCancelled`.
    clock:
        Monotonic time source (injectable for tests).
    """

    __slots__ = (
        "_on_progress",
        "check_every",
        "_min_interval",
        "_deadline",
        "_deadline_at",
        "_clock",
        "_start",
        "_last_report",
        "_cancelled",
    )

    def __init__(
        self,
        *,
        on_progress: Callable[[ProgressUpdate], None] | None = None,
        check_every: int = 1024,
        min_interval: float = 0.1,
        deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self._on_progress = on_progress
        self.check_every = int(check_every)
        self._min_interval = float(min_interval)
        self._clock = clock
        self._start = clock()
        self._deadline: float | None = None
        self._deadline_at: float | None = None
        self._last_report: float | None = None
        self._cancelled = False
        if deadline is not None:
            self.set_deadline(deadline)

    # ------------------------------------------------------------------
    # Control surface
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cancellation; takes effect at the next checkpoint."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def set_deadline(self, seconds: float) -> None:
        """(Re)arm the wall-clock budget, measured from *now*."""
        if seconds < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {seconds}")
        self._deadline = float(seconds)
        self._deadline_at = self._clock() + float(seconds)

    def elapsed(self) -> float:
        """Seconds since the controller was created."""
        return self._clock() - self._start

    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self._deadline_at is not None and self._clock() >= self._deadline_at

    # ------------------------------------------------------------------
    # Hot-path hook
    # ------------------------------------------------------------------
    def checkpoint(
        self,
        metrics: "MiningMetrics",
        *,
        phase: str = "mine",
        done: int = 0,
        total: int | None = None,
    ) -> None:
        """Raise on cancellation/deadline; maybe report progress."""
        now = self._clock()
        if self._deadline_at is not None and now >= self._deadline_at:
            self._cancelled = True
            raise MiningCancelled(
                f"deadline of {self._deadline:g}s exceeded", metrics=metrics
            )
        if self._cancelled:
            raise MiningCancelled("cancelled by caller", metrics=metrics)
        if self._on_progress is not None and (
            self._last_report is None
            or now - self._last_report >= self._min_interval
        ):
            self._last_report = now
            self._on_progress(
                ProgressUpdate(phase, done, total, now - self._start, metrics)
            )
            # A callback may call cancel(); honour it at this very
            # checkpoint so "cancel from the progress callback" is
            # deterministic.
            if self._cancelled:
                raise MiningCancelled("cancelled by caller", metrics=metrics)


def resolve_progress(
    progress: "ProgressController | Callable[[ProgressUpdate], None] | None",
    deadline: float | None,
) -> ProgressController | None:
    """Normalize the ``progress=`` / ``deadline=`` mining arguments.

    ``progress`` may be a ready :class:`ProgressController` or a bare
    callback (wrapped into a fresh controller).  A ``deadline`` without
    a controller creates one; a deadline alongside an existing
    controller (re)arms that controller's budget.
    """
    if progress is None:
        if deadline is None:
            return None
        return ProgressController(deadline=deadline)
    if isinstance(progress, ProgressController):
        if deadline is not None:
            progress.set_deadline(deadline)
        return progress
    if callable(progress):
        return ProgressController(on_progress=progress, deadline=deadline)
    raise TypeError(
        "progress must be a ProgressController or a callable taking a "
        f"ProgressUpdate, got {type(progress).__name__}"
    )
