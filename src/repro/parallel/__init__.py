"""Parallel FCC mining (Section 6): real pools and a scheduler simulator."""

from .executor import parallel_cubeminer_mine, parallel_rsm_mine
from .simulator import (
    CommunicationModel,
    measure_cubeminer_task_times,
    measure_rsm_task_times,
    schedule_makespan,
    simulate_response_times,
)
from .tasks import CubeMinerTask, cubeminer_tasks, rsm_tasks

__all__ = [
    "parallel_cubeminer_mine",
    "parallel_rsm_mine",
    "CommunicationModel",
    "measure_cubeminer_task_times",
    "measure_rsm_task_times",
    "schedule_makespan",
    "simulate_response_times",
    "CubeMinerTask",
    "cubeminer_tasks",
    "rsm_tasks",
]
