"""Parallel FCC mining (Section 6): supervised pools, checkpointing,
fault injection, and a scheduler simulator."""

from .checkpoint import (
    CheckpointJournal,
    CheckpointMismatchError,
    load_journal,
    run_fingerprint,
)
from .executor import parallel_cubeminer_mine, parallel_rsm_mine
from .faults import FAULT_KINDS, Fault, FaultInjected, FaultPlan
from .sharding import (
    merge_shard_results,
    partition_cubeminer_tasks,
    partition_rsm_tasks,
    shard_blocks,
    shard_of_mask,
)
from .shm import (
    SHM_PREFIX,
    ShmAttachment,
    ShmDatasetRef,
    ShmError,
    ShmManager,
    active_segments,
    attach_dataset,
    publish_dataset,
)
from .simulator import (
    CommunicationModel,
    measure_cubeminer_task_times,
    measure_rsm_task_times,
    schedule_makespan,
    simulate_response_times,
)
from .supervisor import RetryPolicy, TaskFailedError, run_supervised
from .tasks import CubeMinerTask, cubeminer_tasks, rsm_tasks

__all__ = [
    "parallel_cubeminer_mine",
    "parallel_rsm_mine",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "load_journal",
    "run_fingerprint",
    "FAULT_KINDS",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "RetryPolicy",
    "TaskFailedError",
    "run_supervised",
    "CommunicationModel",
    "measure_cubeminer_task_times",
    "measure_rsm_task_times",
    "schedule_makespan",
    "simulate_response_times",
    "CubeMinerTask",
    "cubeminer_tasks",
    "rsm_tasks",
    "SHM_PREFIX",
    "ShmAttachment",
    "ShmDatasetRef",
    "ShmError",
    "ShmManager",
    "active_segments",
    "attach_dataset",
    "publish_dataset",
    "merge_shard_results",
    "partition_cubeminer_tasks",
    "partition_rsm_tasks",
    "shard_blocks",
    "shard_of_mask",
]
