"""Task generation for parallel FCC mining (Section 6, phase a).

The paper's parallel framework has three logical phases: task
generation, task allocation, task execution.  Both algorithms decompose
into fully independent tasks (each processor holds the whole dataset,
so no communication happens during execution):

* **RSM** — one task per representative slice, i.e. per enumerated
  base-dimension subset (:func:`rsm_tasks`);
* **CubeMiner** — one task per branch of the splitting tree.  The tree
  is expanded breadth-first until at least ``min_tasks`` frontier nodes
  exist; each frontier node (with its cutter index and track sets) is a
  self-contained continuation (:func:`cubeminer_tasks`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bitset import bit_count, full_mask
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..cubeminer.checks import height_set_closed, row_set_closed
from ..cubeminer.cutter import Cutter
from ..obs.metrics import MiningMetrics
from ..rsm.slices import enumerate_height_subsets

__all__ = ["CubeMinerTask", "rsm_tasks", "cubeminer_tasks"]


@dataclass(frozen=True, slots=True)
class CubeMinerTask:
    """A frontier node of the CubeMiner tree: a resumable sub-search."""

    heights: int
    rows: int
    columns: int
    cutter_index: int
    track_left: int
    track_middle: int

    def as_stack_item(self) -> tuple[tuple[int, int, int], int, int, int]:
        """Convert to the work-stack format of the sequential engine."""
        return (
            (self.heights, self.rows, self.columns),
            self.cutter_index,
            self.track_left,
            self.track_middle,
        )


def rsm_tasks(n_heights: int, min_h: int) -> list[int]:
    """All base-dimension subset masks — one RSM task each."""
    return list(enumerate_height_subsets(n_heights, min_h))


def cubeminer_tasks(
    dataset: Dataset3D,
    thresholds: Thresholds,
    cutters: list[Cutter],
    min_tasks: int,
    metrics: MiningMetrics | None = None,
) -> tuple[list[CubeMinerTask], list[Cube]]:
    """Expand the CubeMiner tree breadth-first into >= ``min_tasks`` tasks.

    Returns the frontier tasks plus any FCCs already completed during
    expansion (nodes that ran out of applicable cutters early).  The
    expansion applies exactly the sequential pruning rules, so replaying
    every task yields exactly the sequential result set.  When
    ``metrics`` is given, the expansion's own node visits and closure
    checks are tallied so the driver's counters cover this phase too.
    """
    if min_tasks < 1:
        raise ValueError(f"min_tasks must be >= 1, got {min_tasks}")
    if metrics is None:
        metrics = MiningMetrics()
    min_h, min_r, min_c = thresholds.as_tuple()
    min_volume = thresholds.min_volume
    n_cutters = len(cutters)
    done: list[Cube] = []
    frontier: list[CubeMinerTask] = []
    if thresholds.feasible_for_shape(dataset.shape):
        frontier = [
            CubeMinerTask(
                full_mask(dataset.n_heights),
                full_mask(dataset.n_rows),
                full_mask(dataset.n_columns),
                0,
                0,
                0,
            )
        ]

    while frontier and len(frontier) < min_tasks:
        next_frontier: list[CubeMinerTask] = []
        expanded_any = False
        for task in frontier:
            heights, rows, columns = task.heights, task.rows, task.columns
            metrics.nodes_visited += 1
            metrics.kernel_ops += 1
            index = task.cutter_index
            while index < n_cutters:
                cutter = cutters[index]
                if (
                    heights >> cutter.height & 1
                    and rows >> cutter.row & 1
                    and columns & cutter.columns
                ):
                    break
                index += 1
            else:
                metrics.leaves_emitted += 1
                done.append(Cube(heights, rows, columns))
                continue
            expanded_any = True
            left_atom = 1 << cutter.height
            middle_atom = 1 << cutter.row
            next_index = index + 1
            h_count = bit_count(heights)
            r_count = bit_count(rows)
            c_count = bit_count(columns)
            son_heights = heights & ~left_atom
            if (
                bit_count(son_heights) >= min_h
                and (h_count - 1) * r_count * c_count >= min_volume
                and not left_atom & task.track_left
                and row_set_closed(dataset, son_heights, rows, columns)
            ):
                metrics.sons_left += 1
                next_frontier.append(
                    CubeMinerTask(
                        son_heights, rows, columns, next_index,
                        task.track_left, task.track_middle,
                    )
                )
            son_rows = rows & ~middle_atom
            if (
                bit_count(son_rows) >= min_r
                and h_count * (r_count - 1) * c_count >= min_volume
                and not middle_atom & task.track_middle
                and height_set_closed(dataset, heights, son_rows, columns)
            ):
                metrics.sons_middle += 1
                next_frontier.append(
                    CubeMinerTask(
                        heights, son_rows, columns, next_index,
                        task.track_left | left_atom, task.track_middle,
                    )
                )
            son_columns = columns & ~cutter.columns
            if (
                bit_count(son_columns) >= min_c
                and h_count * r_count * bit_count(son_columns) >= min_volume
                and height_set_closed(dataset, heights, rows, son_columns)
                and row_set_closed(dataset, heights, rows, son_columns)
            ):
                metrics.sons_right += 1
                next_frontier.append(
                    CubeMinerTask(
                        heights, rows, son_columns, next_index,
                        task.track_left | left_atom,
                        task.track_middle | middle_atom,
                    )
                )
        frontier = next_frontier
        if not expanded_any:
            break
    return frontier, done
