"""Shard the enumerated dimension into independently minable parts.

In the spirit of diamond dicing (Webb/Kaser/Lemire), a huge mining run
splits into ``shards`` sub-problems along the enumerated dimension and
each shard mines independently.  Crucially the split partitions the
**task space**, not the data: every worker still sees the full dataset
(via shared memory or a pickled copy), so the per-task closure checks —
RSM's Lemma-1 post-prune, CubeMiner's H/R-checks — remain valid against
the *global* dataset and each shard emits only globally closed cubes.

* ``parallel-rsm`` tasks are base-dimension subset masks; a subset
  belongs to the shard block containing its lowest member
  (:func:`shard_of_mask`), so the blocks of
  :func:`shard_blocks` induce a true partition of the subset lattice.
* ``parallel-cubeminer`` tasks are frontier branches of the splitting
  tree; the frontier partitions contiguously
  (:func:`partition_cubeminer_tasks`) — the tree guarantees branch
  result sets are disjoint.

:func:`merge_shard_results` folds per-shard outputs back into one
canonical result: deduplicate, re-validate closure and thresholds at
the shard boundary (a belt-and-braces invariant — a violation is
counted and dropped rather than emitted), and sort.  Being a pure
function of the input *set*, the merge is associative and idempotent
across shard orderings — the property suite pins exactly that.
"""

from __future__ import annotations

from ..core.closure import ClosureCache, is_closed_cube
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..obs.metrics import MiningMetrics

__all__ = [
    "shard_blocks",
    "shard_of_mask",
    "partition_rsm_tasks",
    "partition_cubeminer_tasks",
    "merge_shard_results",
]

Triple = tuple[int, int, int]


def shard_blocks(n: int, shards: int) -> list[tuple[int, int]]:
    """Split indices ``0..n-1`` into contiguous ``[start, stop)`` blocks.

    Sizes differ by at most one; at most ``n`` (at least one) blocks
    come back, so tiny dimensions never produce empty blocks.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = max(1, min(shards, n))
    size, extra = divmod(n, shards)
    blocks: list[tuple[int, int]] = []
    start = 0
    for s in range(shards):
        stop = start + size + (1 if s < extra else 0)
        blocks.append((start, stop))
        start = stop
    return blocks


def shard_of_mask(mask: int, blocks: list[tuple[int, int]]) -> int:
    """Shard owning a subset mask: the block containing its lowest member.

    Any member-based rule would partition the subsets; the lowest bit is
    O(1) to compute and keeps the size-ascending enumeration order
    within each shard.
    """
    if mask <= 0:
        raise ValueError(f"subset mask must be positive, got {mask}")
    low = (mask & -mask).bit_length() - 1
    for s, (start, stop) in enumerate(blocks):
        if start <= low < stop:
            return s
    raise ValueError(f"bit {low} falls outside the shard blocks {blocks}")


def partition_rsm_tasks(
    tasks: list[int], blocks: list[tuple[int, int]]
) -> list[list[int]]:
    """Partition RSM subset masks by :func:`shard_of_mask`, keeping each
    shard's tasks in their original enumeration order."""
    parts: list[list[int]] = [[] for _ in blocks]
    for mask in tasks:
        parts[shard_of_mask(mask, blocks)].append(mask)
    return parts


def partition_cubeminer_tasks(tasks: list, shards: int) -> list[list]:
    """Contiguously partition a CubeMiner frontier into ``shards`` parts
    of near-equal size (fewer when the frontier is smaller)."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if not tasks:
        return []
    shards = min(shards, len(tasks))
    size, extra = divmod(len(tasks), shards)
    parts = []
    start = 0
    for s in range(shards):
        stop = start + size + (1 if s < extra else 0)
        parts.append(tasks[start:stop])
        start = stop
    return parts


def merge_shard_results(
    dataset: Dataset3D,
    thresholds: Thresholds,
    triples: list[Triple],
    *,
    metrics: MiningMetrics | None = None,
    revalidate: bool = True,
) -> list[Triple]:
    """Merge per-shard raw cube triples into one canonical result.

    Deduplicates, re-validates each survivor against the full dataset
    (closure via :func:`repro.core.closure.is_closed_cube` plus the
    thresholds — violations are counted in ``shard_merge_dropped`` and
    dropped; a correct shard decomposition never produces any) and
    returns the triples in canonical sorted order.  The output depends
    only on the input set, which makes the merge associative and
    idempotent however the shards are grouped or ordered.
    """
    cache = ClosureCache()
    seen: set[Triple] = set()
    kept: list[Triple] = []
    dropped = 0
    for triple in triples:
        if triple in seen:
            continue
        seen.add(triple)
        if revalidate:
            cube = Cube(*triple)
            if not thresholds.satisfied_by(cube) or not is_closed_cube(
                dataset, cube, cache=cache
            ):
                dropped += 1
                continue
        kept.append(triple)
    kept.sort()
    if metrics is not None:
        metrics.shard_merges += 1
        metrics.shard_merge_dropped += dropped
    return kept
