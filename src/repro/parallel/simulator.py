"""Deterministic multiprocessor simulation for the speedup experiments.

The paper's Figures 6 and 8 run on up to 32 processors.  Reproducing
those *curves* does not require 32 cores: both parallel schemes execute
independent tasks with no mid-run communication, so the parallel
response time is

    response(p) = communication(p) + makespan(task_times, p)

where ``makespan`` is classic list scheduling of the measured
*sequential* per-task times onto ``p`` identical processors.  This
module measures real per-task times once and replays them through a
greedy scheduler, which reproduces the paper's observed behaviour:
near-linear speedup while tasks outnumber processors, then saturation
once a few large tasks (stragglers) dominate — "beyond 8 processors the
speedup starts to degrade".

``CommunicationModel`` covers the paper's broadcast argument: the
dataset copy every processor needs is cheap but not free, and grows
with the processor count, so response time can tick back up at high p.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from ..core.constraints import Thresholds
from ..core.dataset import Dataset3D
from ..core.permute import order_moving_axis_first
from ..cubeminer.algorithm import CubeMinerStats, _run
from ..cubeminer.cutter import HeightOrder, build_cutters
from ..fcp import get_fcp_miner
from ..rsm.algorithm import resolve_base_axis
from ..rsm.postprune import height_closed_in
from ..rsm.slices import representative_slice, enumerate_height_subsets
from .tasks import cubeminer_tasks

__all__ = [
    "CommunicationModel",
    "schedule_makespan",
    "simulate_response_times",
    "measure_rsm_task_times",
    "measure_cubeminer_task_times",
]


@dataclass(frozen=True, slots=True)
class CommunicationModel:
    """Cost of shipping the dataset and dispatching tasks.

    ``broadcast_seconds_per_processor`` models sending the dataset copy
    to each processor (the paper notes it overlaps task generation and
    is small relative to mining); ``dispatch_seconds_per_task`` models
    per-task allocation overhead.
    """

    broadcast_seconds_per_processor: float = 0.0
    dispatch_seconds_per_task: float = 0.0

    def cost(self, n_processors: int, n_tasks: int) -> float:
        return (
            self.broadcast_seconds_per_processor * n_processors
            + self.dispatch_seconds_per_task * n_tasks
        )


def schedule_makespan(
    task_times: list[float], n_processors: int, *, strategy: str = "lpt"
) -> float:
    """Makespan of list-scheduling ``task_times`` onto identical processors.

    ``"lpt"`` (longest processing time first) is the classic 4/3
    approximation and models a work-stealing pool well; ``"fifo"``
    schedules tasks in the given order, modelling static allocation.
    """
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    for t in task_times:
        if t < 0:
            raise ValueError("task times must be non-negative")
    if not task_times:
        return 0.0
    if strategy == "lpt":
        ordered = sorted(task_times, reverse=True)
    elif strategy == "fifo":
        ordered = list(task_times)
    else:
        raise ValueError(f"unknown strategy {strategy!r}; use 'lpt' or 'fifo'")
    loads = [0.0] * min(n_processors, len(ordered))
    heapq.heapify(loads)
    for duration in ordered:
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration)
    return max(loads)


def simulate_response_times(
    task_times: list[float],
    processor_counts: list[int],
    *,
    communication: CommunicationModel | None = None,
    strategy: str = "lpt",
) -> dict[int, float]:
    """Simulated parallel response time for each processor count."""
    comm = communication or CommunicationModel()
    return {
        p: comm.cost(p, len(task_times))
        + schedule_makespan(task_times, p, strategy=strategy)
        for p in processor_counts
    }


def measure_rsm_task_times(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    base_axis: int | str = "auto",
    fcp_miner: str = "dminer",
) -> list[float]:
    """Wall-clock time of every RSM task (one representative slice each).

    The sum of the returned times is the sequential RSM mining time
    (minus enumeration overhead); feeding them to
    :func:`simulate_response_times` reproduces parallel RSM.
    """
    axis = resolve_base_axis(dataset, base_axis)
    order = order_moving_axis_first(axis)
    working = dataset if axis == 0 else dataset.transpose(order)  # type: ignore[arg-type]
    working_thresholds = thresholds.permute(order)
    miner = get_fcp_miner(fcp_miner)
    times: list[float] = []
    if not working_thresholds.feasible_for_shape(working.shape):
        return times
    for heights in enumerate_height_subsets(working.n_heights, working_thresholds.min_h):
        t0 = time.perf_counter()
        rs = representative_slice(working, heights)
        patterns = miner.mine(
            rs,
            min_rows=working_thresholds.min_r,
            min_columns=working_thresholds.min_c,
        )
        for pattern in patterns:
            height_closed_in(working, heights, pattern.rows, pattern.columns)
        times.append(time.perf_counter() - t0)
    return times


def measure_cubeminer_task_times(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    order: HeightOrder = HeightOrder.ZERO_DECREASING,
    min_tasks: int = 64,
) -> list[float]:
    """Wall-clock time of every CubeMiner branch task.

    The tree is expanded to at least ``min_tasks`` branches (as the
    parallel driver does) and each branch is run to completion
    sequentially, timed individually.
    """
    cutters = build_cutters(dataset, order)
    tasks, _done = cubeminer_tasks(dataset, thresholds, cutters, min_tasks)
    times: list[float] = []
    for task in tasks:
        t0 = time.perf_counter()
        _run(dataset, thresholds, cutters, [task.as_stack_item()], CubeMinerStats())
        times.append(time.perf_counter() - t0)
    return times
