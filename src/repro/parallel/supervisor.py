"""Fault-tolerant dispatch of parallel mining chunks.

:func:`run_supervised` sits between the parallel drivers and the worker
pool.  Where the old driver piped chunks through ``Pool.imap`` and died
with the first worker, the supervisor:

* dispatches chunks to a :class:`~concurrent.futures.ProcessPoolExecutor`
  with a bounded in-flight set (one running chunk per worker), so each
  chunk's per-task wall-clock timeout is measured from when it actually
  starts;
* detects worker death (:class:`BrokenProcessPool`) and straggler
  chunks (``task_timeout``), tears the poisoned pool down (killing hung
  workers) and re-spawns a fresh one;
* retries failed chunks with exponential backoff under a bounded
  attempt budget (:class:`RetryPolicy`); exhausting the budget raises
  :class:`TaskFailedError`;
* degrades gracefully to inline sequential execution once the pool has
  been restarted ``max_pool_restarts`` times — a crash-looping pool
  cannot prevent the run from completing;
* streams every completed chunk to an optional
  :class:`~repro.parallel.checkpoint.CheckpointJournal` so an
  interrupted run resumes by replaying the journal and mining only the
  missing chunks.

Results are reassembled by chunk id, and each chunk's metric tallies
are merged exactly once (failed attempts never return tallies), so a
run with retries reports the same cube list — set *and* order — and
the same merged :class:`~repro.obs.metrics.MiningMetrics` totals as a
clean run.  Supervision events (:class:`~repro.obs.events.TaskFailed`,
:class:`~repro.obs.events.TaskRetried`,
:class:`~repro.obs.events.PoolRestarted`,
:class:`~repro.obs.events.CheckpointWritten`) fire on the driver side,
so they reach ``on_event`` sinks even for pool runs.

The deterministic fault-injection plans of
:mod:`repro.parallel.faults` plug in through ``fault_plan`` and fire
inside workers only — the test suite's recovery guarantees rest on
this module.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from concurrent.futures import process as _futures_process
from dataclasses import dataclass
from multiprocessing import get_context

from ..obs import (
    CheckpointWritten,
    EventSink,
    MiningCancelled,
    MiningMetrics,
    PoolRestarted,
    ProgressController,
    TaskFailed,
    TaskRetried,
)
from .checkpoint import CheckpointJournal
from .faults import FaultPlan

__all__ = ["RetryPolicy", "TaskFailedError", "run_supervised"]


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs for one supervised run."""

    #: Re-attempts allowed per chunk beyond the first (budget of
    #: ``retries + 1`` attempts total).
    retries: int = 2
    #: Per-chunk wall-clock timeout in seconds (``None`` = no timeout).
    #: A chunk running past it is treated as hung: the pool is killed,
    #: the chunk loses one attempt, everything else is requeued free.
    task_timeout: float | None = None
    #: Base backoff before attempt ``k+1`` of a chunk:
    #: ``backoff * backoff_factor**k`` seconds, capped at ``max_backoff``.
    backoff: float = 0.1
    backoff_factor: float = 2.0
    max_backoff: float = 5.0
    #: Pool re-spawns tolerated before degrading to inline execution.
    max_pool_restarts: int = 3
    #: Poll granularity of the dispatch loop, seconds.
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be > 0 seconds, got {self.task_timeout}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )

    def delay_before(self, attempt: int) -> float:
        """Backoff in seconds before 1-based retry ``attempt``."""
        if self.backoff <= 0 or attempt <= 0:
            return 0.0
        return min(
            self.backoff * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )


class TaskFailedError(RuntimeError):
    """A chunk exhausted its retry budget (or can never succeed)."""

    def __init__(self, chunk: int, attempts: int, cause: str, error: str) -> None:
        super().__init__(
            f"parallel chunk {chunk} failed {attempts} attempt(s) "
            f"({cause}): {error}"
        )
        self.chunk = chunk
        self.attempts = attempts
        self.cause = cause
        self.error = error


# ----------------------------------------------------------------------
# Worker-side wrapper (top level: must be picklable)
# ----------------------------------------------------------------------
_worker_fault_plan: FaultPlan | None = None


def _init_supervised_worker(initializer, initargs, fault_plan) -> None:
    global _worker_fault_plan
    _worker_fault_plan = fault_plan
    if initializer is not None:
        initializer(*initargs)


def _run_chunk(payload):
    """Execute one chunk in a pool worker, firing any injected fault."""
    worker_fn, chunk_id, attempt, items = payload
    if _worker_fault_plan is not None:
        _worker_fault_plan.fire(chunk_id, attempt)
    part, tallies = worker_fn(items)
    return chunk_id, part, tallies


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
def _kill_executor(executor: ProcessPoolExecutor | None) -> None:
    """Tear a pool down hard: hung workers get SIGKILL, not a join."""
    if executor is None:
        return
    for process in list(getattr(executor, "_processes", {}).values()):
        try:
            process.kill()
        except Exception:
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    # The stdlib atexit hook wakes every registered management thread;
    # ours now has a dead wakeup pipe, so writing to it at interpreter
    # exit raises an ignored-but-printed OSError.  Deregister it.
    manager = getattr(executor, "_executor_manager_thread", None)
    if manager is not None:
        try:
            _futures_process._threads_wakeups.pop(manager, None)
        except Exception:
            pass


def run_supervised(
    chunks: list[list],
    worker_fn,
    initializer,
    initargs: tuple,
    n_workers: int,
    *,
    stats: MiningMetrics,
    policy: RetryPolicy | None = None,
    controller: ProgressController | None = None,
    sink: EventSink | None = None,
    phase: str = "parallel",
    journal: CheckpointJournal | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[list, dict]:
    """Run ``worker_fn`` over ``chunks`` with supervision and recovery.

    Returns ``(raw, recovery)``: the concatenated chunk results in
    chunk order, plus a recovery-accounting dict (``task_failures``,
    ``task_retries``, ``pool_restarts``, ``chunks_resumed``,
    ``degraded_inline``) the drivers surface under
    ``result.stats.extra["recovery"]``.

    ``n_workers == 1`` (or a single chunk) runs inline — same
    journaling, no pool.  On :class:`MiningCancelled` the completed
    chunks' raw results are attached to ``exc.partial_cubes`` (plus the
    interrupted chunk's own partials on the inline path), matching the
    shape the drivers' ``finish()`` handlers expect on both paths.
    """
    if policy is None:
        policy = RetryPolicy()
    n_chunks = len(chunks)
    results: dict[int, list] = {}
    recovery = {
        "task_failures": 0,
        "task_retries": 0,
        "pool_restarts": 0,
        "chunks_resumed": 0,
        "degraded_inline": False,
    }

    def completed_raw() -> list:
        return [
            triple
            for cid in sorted(results)
            for triple in results[cid]
        ]

    def complete(chunk_id: int, part: list, tallies: dict) -> None:
        if chunk_id in results:  # pragma: no cover - double completion guard
            return
        results[chunk_id] = part
        stats.merge(MiningMetrics.from_dict(tallies))
        stats.workers_merged += 1
        if journal is not None:
            journal.record(chunk_id, part, tallies)
            if sink is not None:
                sink(CheckpointWritten(chunk_id, len(part), str(journal.path)))

    # ------------------------------------------------------------------
    # Replay the journal: resumed chunks merge exactly like fresh ones,
    # so a resumed run reports the totals of an uninterrupted one.
    # ------------------------------------------------------------------
    if journal is not None:
        for chunk_id, (raw, tallies) in sorted(journal.completed.items()):
            results[chunk_id] = raw
            stats.merge(MiningMetrics.from_dict(tallies))
            stats.workers_merged += 1
            recovery["chunks_resumed"] += 1

    remaining = [cid for cid in range(n_chunks) if cid not in results]

    def run_inline(chunk_ids: list[int]) -> None:
        """Degraded/sequential path: faults never fire in-process."""
        if initializer is not None:
            initializer(*initargs)
        for chunk_id in chunk_ids:
            chunk_stats = MiningMetrics()
            try:
                part, tallies = worker_fn(
                    chunks[chunk_id], controller, sink, chunk_stats
                )
            except MiningCancelled as exc:
                stats.merge(chunk_stats)
                exc.partial_cubes = completed_raw() + list(exc.partial_cubes)
                exc.metrics = stats
                raise
            complete(chunk_id, part, tallies)
            if controller is not None:
                controller.checkpoint(
                    stats, phase=phase, done=len(results), total=n_chunks
                )

    if not remaining:
        return completed_raw(), recovery

    if n_workers == 1 or len(remaining) <= 1:
        run_inline(remaining)
        return completed_raw(), recovery

    # ------------------------------------------------------------------
    # Pooled path
    # ------------------------------------------------------------------
    # ``attempt`` numbers count dispatches (they advance on *every*
    # requeue, so a fault keyed to attempt 0 cannot re-fire forever);
    # the retry budget is tracked separately and only consumed by
    # failures attributable to the chunk itself (its own exception or
    # timeout) — never by being an innocent victim of a broken pool.
    attempts: dict[int, int] = {cid: 0 for cid in remaining}
    budget_used: dict[int, int] = {cid: 0 for cid in remaining}
    failures: dict[int, list[str]] = {cid: [] for cid in remaining}
    pending: deque = deque((cid, 0, 0.0) for cid in remaining)
    inflight: dict = {}  # future -> (chunk_id, attempt, deadline)
    executor: ProcessPoolExecutor | None = None
    degraded = False
    ctx = get_context()

    def requeue(
        chunk_id: int, failed_attempt: int, cause: str, error: str,
        *, consume_budget: bool,
    ) -> None:
        """Record a failed attempt and requeue (or exhaust the budget)."""
        failures[chunk_id].append(f"{cause}: {error}")
        next_attempt = failed_attempt + 1
        attempts[chunk_id] = next_attempt
        if consume_budget:
            recovery["task_failures"] += 1
            if sink is not None:
                sink(TaskFailed(chunk_id, failed_attempt, cause, error))
            budget_used[chunk_id] += 1
            if budget_used[chunk_id] > policy.retries:
                raise TaskFailedError(
                    chunk_id, budget_used[chunk_id], cause, error
                )
            delay = policy.delay_before(budget_used[chunk_id])
            recovery["task_retries"] += 1
            if sink is not None:
                sink(TaskRetried(chunk_id, next_attempt, delay))
            pending.append((chunk_id, next_attempt, time.monotonic() + delay))
        else:
            # Innocent victim of a pool failure: free re-dispatch.
            pending.append((chunk_id, next_attempt, 0.0))

    def pool_failed(cause: str) -> None:
        """Kill and forget the pool; requeue every in-flight chunk."""
        nonlocal executor, degraded
        recovery["pool_restarts"] += 1
        if sink is not None:
            sink(PoolRestarted(recovery["pool_restarts"], cause))
        _kill_executor(executor)
        executor = None
        for future, (chunk_id, attempt, _deadline) in list(inflight.items()):
            requeue(chunk_id, attempt, cause, "pool failure victim",
                    consume_budget=False)
        inflight.clear()
        if recovery["pool_restarts"] > policy.max_pool_restarts:
            degraded = True
            recovery["degraded_inline"] = True
            if sink is not None:
                sink(PoolRestarted(recovery["pool_restarts"], "degraded-inline"))

    try:
        while pending or inflight:
            if controller is not None:
                controller.checkpoint(
                    stats, phase=phase, done=len(results), total=n_chunks
                )
            if degraded:
                break
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=n_workers,
                    mp_context=ctx,
                    initializer=_init_supervised_worker,
                    initargs=(initializer, initargs, fault_plan),
                )
            now = time.monotonic()
            # Submit ready chunks up to one per worker, preserving order.
            deferred = []
            while pending and len(inflight) < n_workers:
                chunk_id, attempt, ready_at = pending.popleft()
                if ready_at > now:
                    deferred.append((chunk_id, attempt, ready_at))
                    continue
                deadline = (
                    now + policy.task_timeout
                    if policy.task_timeout is not None
                    else float("inf")
                )
                try:
                    future = executor.submit(
                        _run_chunk,
                        (worker_fn, chunk_id, attempt, chunks[chunk_id]),
                    )
                except (BrokenExecutor, RuntimeError) as error:
                    # Pool died between waves; requeue and respawn.
                    deferred.append((chunk_id, attempt, ready_at))
                    for entry in reversed(deferred):
                        pending.appendleft(entry)
                    deferred = []
                    pool_failed(f"submit failed: {error!r}")
                    break
                inflight[future] = (chunk_id, attempt, deadline)
            for entry in reversed(deferred):
                pending.appendleft(entry)
            if degraded:
                break
            if not inflight:
                # Everything pending is backing off; sleep to the
                # earliest ready time (bounded by the poll interval).
                if pending:
                    next_ready = min(entry[2] for entry in pending)
                    pause = min(
                        policy.poll_interval, max(0.0, next_ready - now)
                    )
                    if pause:
                        time.sleep(pause)
                continue
            wait(
                list(inflight),
                timeout=policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()

            broken = False
            for future in [f for f in list(inflight) if f.done()]:
                chunk_id, attempt, _deadline = inflight.pop(future)
                try:
                    done_id, part, tallies = future.result()
                except BrokenExecutor as error:
                    # Worker death poisons every in-flight future; the
                    # culprit is unknowable, so nobody loses budget —
                    # recovery is bounded by max_pool_restarts instead.
                    requeue(chunk_id, attempt, "pool-broken", repr(error),
                            consume_budget=False)
                    broken = True
                except MiningCancelled:
                    raise
                except Exception as error:
                    requeue(chunk_id, attempt, "exception", repr(error),
                            consume_budget=True)
                else:
                    complete(done_id, part, tallies)
            if broken:
                pool_failed("pool-broken")
                continue

            # Straggler detection: a chunk past its deadline means a hung
            # or lost worker; the only way to reclaim the slot is to
            # kill the pool.
            timed_out = [
                (future, meta)
                for future, meta in inflight.items()
                if now > meta[2]
            ]
            if timed_out:
                for future, (chunk_id, attempt, _deadline) in timed_out:
                    del inflight[future]
                    requeue(
                        chunk_id, attempt, "timeout",
                        f"exceeded task_timeout={policy.task_timeout:g}s",
                        consume_budget=True,
                    )
                pool_failed("timeout")
    except MiningCancelled as exc:
        exc.partial_cubes = completed_raw()
        exc.metrics = stats
        raise
    finally:
        _kill_executor(executor)
        executor = None

    if degraded:
        run_inline([cid for cid in range(n_chunks) if cid not in results])

    missing = [cid for cid in range(n_chunks) if cid not in results]
    if missing:  # pragma: no cover - loop invariant keeps this empty
        raise TaskFailedError(
            missing[0], attempts.get(missing[0], 0), "lost",
            "chunk never completed",
        )
    return completed_raw(), recovery
