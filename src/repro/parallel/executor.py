"""Parallel FCC mining with worker processes (Section 6, phases b-c).

Every worker sees the full dataset (matching the paper's "each
processor requires a copy of the entire dataset") and then executes its
allocated tasks without any inter-worker communication.  By default a
pooled run publishes the dataset once into shared memory
(:mod:`repro.parallel.shm`) and ships workers only an O(1)
:class:`~repro.parallel.shm.ShmDatasetRef`; the numpy kernel attaches
with zero copies, other kernels fall back to a private copy on attach,
and ``use_shm=False`` restores the legacy pickled-dataset initializer.

* :func:`parallel_rsm_mine` — tasks are base-dimension subsets; a
  worker builds each representative slice, mines it with the 2D miner
  and post-prunes locally.
* :func:`parallel_cubeminer_mine` — tasks are frontier branches of the
  splitting tree; a worker resumes the sequential engine from the
  branch's node, cutter index and track sets.

With ``shards > 1`` the task space additionally partitions along the
enumerated dimension (:mod:`repro.parallel.sharding`): every chunk then
belongs to exactly one shard, per-shard results merge through
:func:`~repro.parallel.sharding.merge_shard_results` (dedup + closure
re-validation + canonical order), and the checkpoint journal keeps
working unchanged because the fingerprint binds the sharded chunk
decomposition like any other.

Both drivers dispatch their task chunks through
:func:`~repro.parallel.supervisor.run_supervised`, which supervises the
pool: worker crashes and hung chunks are detected, failed chunks retry
with exponential backoff under a bounded budget, a poisoned pool is
re-spawned (and, past ``max_pool_restarts``, the run degrades to inline
sequential execution), and completed chunks optionally stream to a
checkpoint journal so an interrupted run can resume
(``checkpoint_path=`` / ``resume=``).  ``n_workers == 1`` and trivially
small task lists run inline through the same code path, so results and
tests do not depend on multiprocessing availability and both paths
share one result/metrics shape — including on cancellation.

Instrumentation: each worker accumulates its own
:class:`~repro.obs.metrics.MiningMetrics` and ships it back with its
chunk result; the driver merges each chunk's tallies exactly once
(failed attempts return nothing), so a parallel run — even one that
retried faults — reports the same counter totals a sequential run
would.  Progress checkpoints and deadlines are evaluated in the driver
between chunk completions (and inside the engine on the inline path).
Worker-side event sinks, being arbitrary callables, do not cross
process boundaries and only fire on the inline path; the supervision
events (``TaskFailed``, ``TaskRetried``, ``PoolRestarted``,
``CheckpointWritten``) fire driver-side and therefore always reach
``on_event``.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..core.closure import ClosureCache
from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import AXIS_NAMES, Dataset3D
from ..core.kernels import Kernel
from ..core.permute import map_cube_from_transposed, order_moving_axis_first
from ..core.result import MiningResult, MiningStats
from ..cubeminer.algorithm import CubeMinerStats, _run
from ..cubeminer.cutter import Cutter, HeightOrder, build_cutters
from ..fcp import get_fcp_miner
from ..obs import (
    EventSink,
    MineDone,
    MineStart,
    MiningCancelled,
    MiningMetrics,
    ProgressController,
    SliceEvent,
    resolve_progress,
)
from ..rsm.algorithm import resolve_base_axis
from ..rsm.postprune import height_closed_in
from ..rsm.slices import representative_slice
from .checkpoint import CheckpointJournal, run_fingerprint
from .faults import FaultPlan
from .sharding import (
    merge_shard_results,
    partition_cubeminer_tasks,
    partition_rsm_tasks,
    shard_blocks,
)
from .shm import ShmDatasetRef, ShmError, ShmManager, attach_dataset, publish_dataset
from .supervisor import RetryPolicy, run_supervised
from .tasks import CubeMinerTask, cubeminer_tasks, rsm_tasks

__all__ = ["parallel_rsm_mine", "parallel_cubeminer_mine"]

# ----------------------------------------------------------------------
# Worker-side state and functions (must be importable at top level).
# ----------------------------------------------------------------------
_worker_dataset: Dataset3D | None = None
_worker_thresholds: Thresholds | None = None
_worker_fcp_name: str = "dminer"
_worker_cutters: list[Cutter] | None = None
_worker_attachment = None  # keeps a zero-copy shm segment mapped


def _materialize_worker_dataset(
    dataset: "Dataset3D | ShmDatasetRef", kernel_name: str | None
) -> Dataset3D:
    """Turn the initializer payload into this worker's dataset.

    A :class:`ShmDatasetRef` attaches to the published segment (held
    open in ``_worker_attachment`` for the process lifetime); a plain
    dataset is the legacy pickled copy.  An explicit kernel name wins
    over whatever the payload recorded, so a worker always inherits
    exactly the kernel the driver selected.
    """
    global _worker_attachment
    if isinstance(dataset, ShmDatasetRef):
        attachment = attach_dataset(dataset, kernel=kernel_name)
        _worker_attachment = attachment
        return attachment.dataset
    return dataset if kernel_name is None else dataset.with_kernel(kernel_name)


def _init_rsm_worker(
    dataset: "Dataset3D | ShmDatasetRef",
    thresholds: Thresholds,
    fcp_name: str,
    kernel_name: str | None = None,
) -> None:
    global _worker_dataset, _worker_thresholds, _worker_fcp_name
    _worker_dataset = _materialize_worker_dataset(dataset, kernel_name)
    _worker_thresholds = thresholds
    _worker_fcp_name = fcp_name


def _rsm_worker_chunk(
    height_masks: list[int],
    progress: ProgressController | None = None,
    sink: EventSink | None = None,
    metrics: MiningMetrics | None = None,
) -> tuple[list[tuple[int, int, int]], dict[str, int]]:
    """Mine a chunk of representative slices.

    Returns the raw cube triples plus the chunk's counter tallies (as a
    picklable dict).  ``progress``/``sink``/``metrics`` are only bound
    on the inline path — pool workers run with the defaults and the
    driver merges their returned tallies.
    """
    dataset = _worker_dataset
    thresholds = _worker_thresholds
    assert dataset is not None and thresholds is not None
    stats = metrics if metrics is not None else MiningMetrics()
    miner = get_fcp_miner(_worker_fcp_name)
    found: list[tuple[int, int, int]] = []
    try:
        for done, heights in enumerate(height_masks, start=1):
            size = heights.bit_count()
            stats.rs_slices_mined += 1
            stats.kernel_ops += 1
            rs = representative_slice(dataset, heights)
            patterns = miner.mine(
                rs, min_rows=thresholds.min_r, min_columns=thresholds.min_c
            )
            stats.fcp_patterns += len(patterns)
            n_kept = 0
            for pattern in patterns:
                volume = size * pattern.row_support * pattern.column_support
                if volume < thresholds.min_volume:
                    continue
                stats.postprune_checked += 1
                if height_closed_in(
                    dataset, heights, pattern.rows, pattern.columns, metrics=stats
                ):
                    n_kept += 1
                    found.append((heights, pattern.rows, pattern.columns))
                else:
                    stats.postprune_discards += 1
            if sink is not None:
                sink(SliceEvent(heights, len(patterns), n_kept))
            if progress is not None:
                progress.checkpoint(
                    stats, phase="parallel-rsm", done=done, total=len(height_masks)
                )
    except MiningCancelled as exc:
        exc.partial_cubes = found
        exc.metrics = stats
        raise
    return found, stats.as_dict()


def _init_cubeminer_worker(
    dataset: "Dataset3D | ShmDatasetRef",
    thresholds: Thresholds,
    cutters: list[Cutter],
    kernel_name: str | None = None,
) -> None:
    global _worker_dataset, _worker_thresholds, _worker_cutters
    _worker_dataset = _materialize_worker_dataset(dataset, kernel_name)
    _worker_thresholds = thresholds
    _worker_cutters = cutters


def _cubeminer_worker_chunk(
    tasks: list[CubeMinerTask],
    progress: ProgressController | None = None,
    sink: EventSink | None = None,
    metrics: MiningMetrics | None = None,
) -> tuple[list[tuple[int, int, int]], dict[str, int]]:
    """Resume the sequential engine on a chunk of tree branches."""
    dataset = _worker_dataset
    thresholds = _worker_thresholds
    cutters = _worker_cutters
    assert dataset is not None and thresholds is not None and cutters is not None
    stats = metrics if metrics is not None else MiningMetrics()
    stack = [task.as_stack_item() for task in tasks]
    try:
        # A fresh chunk-scoped closure cache: witnesses cannot travel
        # between processes, but within one chunk the engine gets the
        # same witness reuse as a sequential run (counters merge
        # driver-side with the rest of the chunk's tallies).
        cubes, stats = _run(
            dataset,
            thresholds,
            cutters,
            stack,
            stats,
            closure_cache=ClosureCache(),
            sink=sink,
            progress=progress,
        )
    except MiningCancelled as exc:
        exc.partial_cubes = [
            (cube.heights, cube.rows, cube.columns) for cube in exc.partial_cubes
        ]
        raise
    return [(cube.heights, cube.rows, cube.columns) for cube in cubes], stats.as_dict()


def _chunked(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _chunk_shards(shard_lists: list[list], chunk_target: int) -> list[list]:
    """Chunk each shard's tasks independently and concatenate.

    Chunk boundaries never cross shards, so every chunk belongs to
    exactly one shard and the single global chunk list flows through
    one supervised run — retries, journal fingerprint and resume all
    work unchanged for sharded decompositions.
    """
    nonempty = [part for part in shard_lists if part]
    if not nonempty:
        return []
    per_shard = max(1, -(-chunk_target // len(nonempty)))
    return [chunk for part in nonempty for chunk in _chunked(part, per_shard)]


def _prepare_transport(
    dataset: Dataset3D,
    use_shm: bool | None,
    n_workers: int,
    n_chunks: int,
    stats: MiningMetrics,
    extra: dict,
) -> "tuple[Dataset3D | ShmDatasetRef, ShmManager | None]":
    """Decide how the dataset reaches the workers and publish if shm.

    ``use_shm=None`` auto-enables shared memory exactly when a worker
    pool will actually run (more than one worker and chunk) and the
    dataset is non-empty; the decision is a pure function of the call
    configuration, so clean, faulty and resumed runs of one config
    report identical transport counters.  ``use_shm=True`` forces
    publication (raising on failure); ``False`` keeps the legacy
    pickled-dataset initializer.  On auto, a publish failure (e.g. no
    ``/dev/shm``) degrades silently to the pickled path.
    """
    pooled = n_workers > 1 and n_chunks > 1
    forced = use_shm is True
    if use_shm is None:
        use_shm = pooled and min(dataset.shape) > 0
    if not use_shm:
        extra["shm"] = {"enabled": False}
        return dataset, None
    manager = ShmManager()
    try:
        ref = publish_dataset(dataset, manager)
    except (ShmError, OSError) as exc:
        manager.cleanup()
        if forced:
            raise
        extra["shm"] = {"enabled": False, "error": repr(exc)}
        return dataset, None
    stats.shm_datasets_published += 1
    zero_copy = dataset.kernel.words_native
    if not zero_copy:
        stats.shm_copy_fallbacks += 1
    extra["shm"] = {
        "enabled": True,
        "segment": ref.segment,
        "nbytes": ref.nbytes,
        "zero_copy": zero_copy,
    }
    return ref, manager


def _open_journal(
    checkpoint_path: "str | Path | None",
    *,
    algorithm: str,
    dataset_shape: tuple[int, int, int],
    thresholds: Thresholds,
    chunks: list[list],
    resume: bool,
) -> CheckpointJournal | None:
    if checkpoint_path is None:
        return None
    return CheckpointJournal.open(
        checkpoint_path,
        algorithm=algorithm,
        fingerprint=run_fingerprint(
            algorithm,
            dataset_shape,
            thresholds.as_tuple() + (thresholds.min_volume,),
            chunks,
        ),
        n_chunks=len(chunks),
        resume=resume,
    )


# ----------------------------------------------------------------------
# Public drivers
# ----------------------------------------------------------------------
def parallel_rsm_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    n_workers: int = 2,
    base_axis: int | str = "auto",
    fcp_miner: str = "dminer",
    chunks_per_worker: int = 4,
    shards: int = 1,
    shard_dim: int | str = "auto",
    use_shm: bool | None = None,
    kernel: str | Kernel | None = None,
    retries: int = 2,
    task_timeout: float | None = None,
    backoff: float = 0.1,
    checkpoint_path: "str | Path | None" = None,
    resume: bool = False,
    fault_plan: FaultPlan | None = None,
    metrics: MiningMetrics | None = None,
    on_event: EventSink | None = None,
    progress: "ProgressController | callable | None" = None,
    deadline: float | None = None,
) -> MiningResult:
    """Parallel RSM: fan representative-slice tasks across processes."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    get_fcp_miner(fcp_miner)  # validate the name before forking
    start = time.perf_counter()
    stats = metrics if metrics is not None else MiningMetrics()
    controller = resolve_progress(progress, deadline)
    if kernel is not None:
        dataset = dataset.with_kernel(kernel)
    kernel_name = dataset.kernel.name
    axis = resolve_base_axis(dataset, base_axis)
    if shard_dim != "auto" and Dataset3D._axis_index(shard_dim) != axis:
        raise ValueError(
            f"parallel-rsm shards along its enumerated base dimension "
            f"({AXIS_NAMES[axis]!r}); shard_dim {shard_dim!r} does not match"
        )
    axis_name = ("h", "r", "c")[axis]
    order = order_moving_axis_first(axis)
    working = dataset if axis == 0 else dataset.transpose(order)  # type: ignore[arg-type]
    working_thresholds = thresholds.permute(order)
    algorithm = f"parallel-rsm-{axis_name}[{fcp_miner}]x{n_workers}"
    if shards > 1:
        algorithm += f"s{shards}"
    policy = RetryPolicy(retries=retries, task_timeout=task_timeout, backoff=backoff)
    if on_event is not None:
        on_event(
            MineStart(
                algorithm,
                dataset.shape,
                thresholds.as_tuple() + (thresholds.min_volume,),
            )
        )

    tasks: list[int] = []
    recovery: dict | None = None
    transport_extra: dict = {}

    def finish(raw: list[tuple[int, int, int]]) -> MiningResult:
        cubes = [map_cube_from_transposed(Cube(h, r, c), order) for h, r, c in raw]
        extra: dict = {"n_tasks": len(tasks), "n_workers": n_workers}
        extra.update(transport_extra)
        if recovery is not None:
            extra["recovery"] = recovery
        return MiningResult(
            cubes=cubes,
            algorithm=algorithm,
            thresholds=thresholds,
            dataset_shape=dataset.shape,
            elapsed_seconds=time.perf_counter() - start,
            stats=MiningStats(metrics=stats, extra=extra),
        )

    def merged(raw: list[tuple[int, int, int]]) -> list[tuple[int, int, int]]:
        if shards <= 1:
            return raw
        # Boundary invariant: the union of the per-shard results must be
        # exactly the closed-cube set; duplicates or closure violations
        # are dropped (and counted) rather than emitted.
        return merge_shard_results(working, working_thresholds, raw, metrics=stats)

    try:
        # Checkpoint before task generation: subset enumeration is
        # exponential in the base dimension, so an expired deadline must
        # abort before it, not after.
        if controller is not None:
            controller.checkpoint(stats, phase="parallel-rsm", done=0)
        if working_thresholds.feasible_for_shape(working.shape):
            tasks = rsm_tasks(working.n_heights, working_thresholds.min_h)
        if controller is not None:
            controller.checkpoint(
                stats, phase="parallel-rsm", done=0, total=len(tasks)
            )
        chunk_target = n_workers * chunks_per_worker
        if shards > 1 and tasks:
            blocks = shard_blocks(working.n_heights, shards)
            shard_lists = partition_rsm_tasks(tasks, blocks)
            chunks = _chunk_shards(shard_lists, chunk_target)
            transport_extra["shards"] = {
                "shards": shards,
                "dim": AXIS_NAMES[axis],
                "tasks_per_shard": [len(part) for part in shard_lists],
            }
        else:
            chunks = _chunked(tasks, chunk_target) if tasks else []
        # The journal stores working-axis triples; the fingerprint binds
        # it to this exact decomposition (and axis/sharding, via the
        # algorithm and chunk list).
        journal = _open_journal(
            checkpoint_path,
            algorithm=algorithm,
            dataset_shape=dataset.shape,
            thresholds=thresholds,
            chunks=chunks,
            resume=resume,
        )
        payload, shm_manager = _prepare_transport(
            working, use_shm, n_workers, len(chunks), stats, transport_extra
        )
        try:
            raw, recovery = run_supervised(
                chunks,
                _rsm_worker_chunk,
                _init_rsm_worker,
                (payload, working_thresholds, fcp_miner, kernel_name),
                n_workers,
                stats=stats,
                policy=policy,
                controller=controller,
                sink=on_event,
                phase="parallel-rsm",
                journal=journal,
                fault_plan=fault_plan,
            )
        finally:
            if journal is not None:
                journal.close()
            if shm_manager is not None:
                shm_manager.cleanup()
    except MiningCancelled as exc:
        elapsed = time.perf_counter() - start
        exc.metrics = stats
        exc.partial = finish(merged(list(exc.partial_cubes)))
        if on_event is not None:
            on_event(MineDone(algorithm, len(exc.partial), elapsed, cancelled=True))
        raise

    result = finish(merged(raw))
    if on_event is not None:
        on_event(MineDone(algorithm, len(result), result.elapsed_seconds))
    return result


def parallel_cubeminer_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    n_workers: int = 2,
    order: HeightOrder = HeightOrder.ZERO_DECREASING,
    min_tasks: int | None = None,
    chunks_per_worker: int = 4,
    shards: int = 1,
    shard_dim: int | str = "auto",
    use_shm: bool | None = None,
    kernel: str | Kernel | None = None,
    retries: int = 2,
    task_timeout: float | None = None,
    backoff: float = 0.1,
    checkpoint_path: "str | Path | None" = None,
    resume: bool = False,
    fault_plan: FaultPlan | None = None,
    metrics: MiningMetrics | None = None,
    on_event: EventSink | None = None,
    progress: "ProgressController | callable | None" = None,
    deadline: float | None = None,
) -> MiningResult:
    """Parallel CubeMiner: fan tree branches across processes."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shard_dim != "auto":
        raise ValueError(
            "parallel-cubeminer shards its splitting-tree frontier, not a "
            f"named dimension; shard_dim must stay 'auto', got {shard_dim!r}"
        )
    start = time.perf_counter()
    stats = metrics if metrics is not None else MiningMetrics()
    controller = resolve_progress(progress, deadline)
    if kernel is not None:
        dataset = dataset.with_kernel(kernel)
    kernel_name = dataset.kernel.name
    cutters = build_cutters(dataset, order)
    stats.cutters_built += len(cutters)
    stats.n_cutters = len(cutters)
    if min_tasks is None:
        min_tasks = max(8 * n_workers, 1)
    algorithm = f"parallel-cubeminer[{order.value}]x{n_workers}"
    if shards > 1:
        algorithm += f"s{shards}"
    policy = RetryPolicy(retries=retries, task_timeout=task_timeout, backoff=backoff)
    if on_event is not None:
        on_event(
            MineStart(
                algorithm,
                dataset.shape,
                thresholds.as_tuple() + (thresholds.min_volume,),
            )
        )
    tasks: list[CubeMinerTask] = []
    done: list[Cube] = []
    recovery: dict | None = None
    transport_extra: dict = {}

    def finish(triples: list[tuple[int, int, int]]) -> MiningResult:
        cubes = [Cube(h, r, c) for h, r, c in triples]
        extra: dict = {
            "n_tasks": len(tasks),
            "n_workers": n_workers,
            "fccs_during_expansion": len(done),
        }
        extra.update(transport_extra)
        if recovery is not None:
            extra["recovery"] = recovery
        return MiningResult(
            cubes=cubes,
            algorithm=algorithm,
            thresholds=thresholds,
            dataset_shape=dataset.shape,
            elapsed_seconds=time.perf_counter() - start,
            stats=MiningStats(metrics=stats, extra=extra),
        )

    def merged(raw: list[tuple[int, int, int]]) -> list[tuple[int, int, int]]:
        triples = [(c.heights, c.rows, c.columns) for c in done] + list(raw)
        if shards <= 1:
            return triples
        # The merge covers the expansion-phase FCCs too, so the final set
        # is deduped and re-validated as a whole.
        return merge_shard_results(dataset, thresholds, triples, metrics=stats)

    try:
        # Checkpoint before the breadth-first expansion: it mines real
        # tree nodes, so an expired deadline must abort before it.
        if controller is not None:
            controller.checkpoint(stats, phase="parallel-cubeminer", done=0)
        tasks, done = cubeminer_tasks(
            dataset, thresholds, cutters, min_tasks, metrics=stats
        )
        if controller is not None:
            controller.checkpoint(
                stats, phase="parallel-cubeminer", done=0, total=len(tasks)
            )
        chunk_target = n_workers * chunks_per_worker
        if shards > 1 and tasks:
            shard_lists = partition_cubeminer_tasks(tasks, shards)
            chunks = _chunk_shards(shard_lists, chunk_target)
            transport_extra["shards"] = {
                "shards": shards,
                "dim": "frontier",
                "tasks_per_shard": [len(part) for part in shard_lists],
            }
        else:
            chunks = _chunked(tasks, chunk_target) if tasks else []
        # Expansion-phase FCCs (``done``) are deterministic re-derivations
        # on resume, so the journal only needs the chunk results.
        journal = _open_journal(
            checkpoint_path,
            algorithm=algorithm,
            dataset_shape=dataset.shape,
            thresholds=thresholds,
            chunks=chunks,
            resume=resume,
        )
        payload, shm_manager = _prepare_transport(
            dataset, use_shm, n_workers, len(chunks), stats, transport_extra
        )
        try:
            raw, recovery = run_supervised(
                chunks,
                _cubeminer_worker_chunk,
                _init_cubeminer_worker,
                (payload, thresholds, cutters, kernel_name),
                n_workers,
                stats=stats,
                policy=policy,
                controller=controller,
                sink=on_event,
                phase="parallel-cubeminer",
                journal=journal,
                fault_plan=fault_plan,
            )
        finally:
            if journal is not None:
                journal.close()
            if shm_manager is not None:
                shm_manager.cleanup()
    except MiningCancelled as exc:
        elapsed = time.perf_counter() - start
        exc.metrics = stats
        exc.partial = finish(merged(list(exc.partial_cubes)))
        if on_event is not None:
            on_event(MineDone(algorithm, len(exc.partial), elapsed, cancelled=True))
        raise

    result = finish(merged(raw))
    if on_event is not None:
        on_event(MineDone(algorithm, len(result), result.elapsed_seconds))
    return result
