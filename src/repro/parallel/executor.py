"""Parallel FCC mining with worker processes (Section 6, phases b-c).

Every worker receives a full copy of the dataset once (through the pool
initializer, matching the paper's "each processor requires a copy of
the entire dataset") and then executes its allocated tasks without any
inter-worker communication:

* :func:`parallel_rsm_mine` — tasks are base-dimension subsets; a
  worker builds each representative slice, mines it with the 2D miner
  and post-prunes locally.
* :func:`parallel_cubeminer_mine` — tasks are frontier branches of the
  splitting tree; a worker resumes the sequential engine from the
  branch's node, cutter index and track sets.

Both functions fall back to inline execution for ``n_workers == 1`` or
trivially small task lists, so results and tests do not depend on
multiprocessing availability.
"""

from __future__ import annotations

import time
from multiprocessing import get_context

from ..core.constraints import Thresholds
from ..core.cube import Cube
from ..core.dataset import Dataset3D
from ..core.kernels import Kernel
from ..core.permute import map_cube_from_transposed, order_moving_axis_first
from ..core.result import MiningResult
from ..cubeminer.algorithm import CubeMinerStats, _run
from ..cubeminer.cutter import Cutter, HeightOrder, build_cutters
from ..fcp import get_fcp_miner
from ..rsm.algorithm import resolve_base_axis
from ..rsm.postprune import height_closed_in
from ..rsm.slices import representative_slice
from .tasks import CubeMinerTask, cubeminer_tasks, rsm_tasks

__all__ = ["parallel_rsm_mine", "parallel_cubeminer_mine"]

# ----------------------------------------------------------------------
# Worker-side state and functions (must be importable at top level).
# ----------------------------------------------------------------------
_worker_dataset: Dataset3D | None = None
_worker_thresholds: Thresholds | None = None
_worker_fcp_name: str = "dminer"
_worker_cutters: list[Cutter] | None = None


def _init_rsm_worker(
    dataset: Dataset3D,
    thresholds: Thresholds,
    fcp_name: str,
    kernel_name: str | None = None,
) -> None:
    global _worker_dataset, _worker_thresholds, _worker_fcp_name
    # The dataset pickles its kernel spec, but an explicit name wins so a
    # worker always inherits exactly the kernel the driver selected.
    _worker_dataset = (
        dataset if kernel_name is None else dataset.with_kernel(kernel_name)
    )
    _worker_thresholds = thresholds
    _worker_fcp_name = fcp_name


def _rsm_worker_chunk(height_masks: list[int]) -> list[tuple[int, int, int]]:
    """Mine a chunk of representative slices; return raw cube triples."""
    dataset = _worker_dataset
    thresholds = _worker_thresholds
    assert dataset is not None and thresholds is not None
    miner = get_fcp_miner(_worker_fcp_name)
    found: list[tuple[int, int, int]] = []
    for heights in height_masks:
        size = heights.bit_count()
        rs = representative_slice(dataset, heights)
        patterns = miner.mine(
            rs, min_rows=thresholds.min_r, min_columns=thresholds.min_c
        )
        for pattern in patterns:
            volume = size * pattern.row_support * pattern.column_support
            if volume < thresholds.min_volume:
                continue
            if height_closed_in(dataset, heights, pattern.rows, pattern.columns):
                found.append((heights, pattern.rows, pattern.columns))
    return found


def _init_cubeminer_worker(
    dataset: Dataset3D,
    thresholds: Thresholds,
    cutters: list[Cutter],
    kernel_name: str | None = None,
) -> None:
    global _worker_dataset, _worker_thresholds, _worker_cutters
    _worker_dataset = (
        dataset if kernel_name is None else dataset.with_kernel(kernel_name)
    )
    _worker_thresholds = thresholds
    _worker_cutters = cutters


def _cubeminer_worker_chunk(tasks: list[CubeMinerTask]) -> list[tuple[int, int, int]]:
    """Resume the sequential engine on a chunk of tree branches."""
    dataset = _worker_dataset
    thresholds = _worker_thresholds
    cutters = _worker_cutters
    assert dataset is not None and thresholds is not None and cutters is not None
    stack = [task.as_stack_item() for task in tasks]
    cubes, _stats = _run(dataset, thresholds, cutters, stack, CubeMinerStats())
    return [(cube.heights, cube.rows, cube.columns) for cube in cubes]


def _chunked(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


# ----------------------------------------------------------------------
# Public drivers
# ----------------------------------------------------------------------
def parallel_rsm_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    n_workers: int = 2,
    base_axis: int | str = "auto",
    fcp_miner: str = "dminer",
    chunks_per_worker: int = 4,
    kernel: str | Kernel | None = None,
) -> MiningResult:
    """Parallel RSM: fan representative-slice tasks across processes."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    get_fcp_miner(fcp_miner)  # validate the name before forking
    start = time.perf_counter()
    if kernel is not None:
        dataset = dataset.with_kernel(kernel)
    kernel_name = dataset.kernel.name
    axis = resolve_base_axis(dataset, base_axis)
    axis_name = ("h", "r", "c")[axis]
    order = order_moving_axis_first(axis)
    working = dataset if axis == 0 else dataset.transpose(order)  # type: ignore[arg-type]
    working_thresholds = thresholds.permute(order)

    tasks = (
        rsm_tasks(working.n_heights, working_thresholds.min_h)
        if working_thresholds.feasible_for_shape(working.shape)
        else []
    )
    raw: list[tuple[int, int, int]] = []
    if n_workers == 1 or len(tasks) <= 1:
        _init_rsm_worker(working, working_thresholds, fcp_miner, kernel_name)
        raw = _rsm_worker_chunk(tasks)
    else:
        chunks = _chunked(tasks, n_workers * chunks_per_worker)
        ctx = get_context()
        with ctx.Pool(
            processes=n_workers,
            initializer=_init_rsm_worker,
            initargs=(working, working_thresholds, fcp_miner, kernel_name),
        ) as pool:
            for part in pool.map(_rsm_worker_chunk, chunks):
                raw.extend(part)

    cubes = [
        map_cube_from_transposed(Cube(h, r, c), order) for h, r, c in raw
    ]
    return MiningResult(
        cubes=cubes,
        algorithm=f"parallel-rsm-{axis_name}[{fcp_miner}]x{n_workers}",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats={"n_tasks": len(tasks), "n_workers": n_workers},
    )


def parallel_cubeminer_mine(
    dataset: Dataset3D,
    thresholds: Thresholds,
    *,
    n_workers: int = 2,
    order: HeightOrder = HeightOrder.ZERO_DECREASING,
    min_tasks: int | None = None,
    chunks_per_worker: int = 4,
    kernel: str | Kernel | None = None,
) -> MiningResult:
    """Parallel CubeMiner: fan tree branches across processes."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    start = time.perf_counter()
    if kernel is not None:
        dataset = dataset.with_kernel(kernel)
    kernel_name = dataset.kernel.name
    cutters = build_cutters(dataset, order)
    if min_tasks is None:
        min_tasks = max(8 * n_workers, 1)
    tasks, done = cubeminer_tasks(dataset, thresholds, cutters, min_tasks)

    raw: list[tuple[int, int, int]] = []
    if n_workers == 1 or len(tasks) <= 1:
        _init_cubeminer_worker(dataset, thresholds, cutters, kernel_name)
        raw = _cubeminer_worker_chunk(tasks)
    else:
        chunks = _chunked(tasks, n_workers * chunks_per_worker)
        ctx = get_context()
        with ctx.Pool(
            processes=n_workers,
            initializer=_init_cubeminer_worker,
            initargs=(dataset, thresholds, cutters, kernel_name),
        ) as pool:
            for part in pool.map(_cubeminer_worker_chunk, chunks):
                raw.extend(part)

    cubes = list(done) + [Cube(h, r, c) for h, r, c in raw]
    return MiningResult(
        cubes=cubes,
        algorithm=f"parallel-cubeminer[{order.value}]x{n_workers}",
        thresholds=thresholds,
        dataset_shape=dataset.shape,
        elapsed_seconds=time.perf_counter() - start,
        stats={
            "n_tasks": len(tasks),
            "n_workers": n_workers,
            "fccs_during_expansion": len(done),
        },
    )
