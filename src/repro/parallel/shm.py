"""Zero-copy dataset hand-off through POSIX shared memory.

The parallel drivers historically pickled the whole dataset into every
worker through the pool initializer — a per-worker copy tax that grows
with the tensor.  This module publishes the dataset's packed-uint64
word grid (the canonical layout of
:func:`repro.core.kernels.words_from_tensor`) into one
``multiprocessing.shared_memory`` segment and hands workers a
:class:`ShmDatasetRef` instead: segment name, shape and a sha256
fingerprint — O(1) bytes regardless of dataset size.

A worker attaches with :func:`attach_dataset`.  On a words-native
kernel (``numpy``) the segment is adopted as the dataset's ones-grid
with **zero copies** (:meth:`repro.core.dataset.Dataset3D.from_packed_grid`);
on other kernels the words unpack into a private tensor copy and the
segment handle is released immediately (the graceful copy-fallback).

Lifecycle and crash-safety:

* every segment a process creates is tracked in a module registry
  (:func:`active_segments` — what the leak tests assert on) and torn
  down by :meth:`ShmManager.cleanup`, by ``with ShmManager()``, or at
  interpreter exit via ``atexit``;
* ``cleanup`` unlinks even while numpy views still map the segment
  (``close`` raising :class:`BufferError` is expected there): on Linux
  the ``/dev/shm`` name disappears at once and the memory itself is
  freed when the last map goes away — worker death, clean or not, never
  leaks a segment;
* attaching processes deregister from the ``resource_tracker``
  (Python < 3.13 registers attachments too, which would let a worker's
  exit unlink a segment the driver still owns);
* a forked worker inherits the driver's registry, so attaching resolves
  to the already-mapped segment without any syscalls.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..core.dataset import Dataset3D
from ..core.kernels import (
    Kernel,
    resolve_kernel,
    words_from_tensor,
    words_per_row,
)

__all__ = [
    "SHM_PREFIX",
    "ShmError",
    "ShmDatasetRef",
    "ShmAttachment",
    "ShmManager",
    "publish_dataset",
    "attach_dataset",
    "active_segments",
]

#: Every segment this library creates carries this name prefix, so a
#: leak check can scan ``/dev/shm`` for leftovers unambiguously.
SHM_PREFIX = "repro-fcc-"

_WORD_DTYPE = np.dtype("<u8")


class ShmError(RuntimeError):
    """A shared-memory publish/attach operation failed."""


@dataclass(frozen=True)
class ShmDatasetRef:
    """O(1)-size picklable handle to a dataset published in shared memory.

    This is what travels to pool workers in place of the dataset itself:
    the segment name, the ``(l, n, m)`` shape, the exact byte length and
    a sha256 fingerprint of the packed words (verified on attach, so a
    stale or recycled segment name cannot silently feed wrong bits into
    a worker), plus the kernel the driver selected.
    """

    segment: str
    shape: tuple[int, int, int]
    nbytes: int
    fingerprint: str
    kernel: str | None = None

    @property
    def words_shape(self) -> tuple[int, int, int]:
        """Shape of the packed word grid the segment holds."""
        l, n, m = self.shape
        return (l, n, words_per_row(m))


# ----------------------------------------------------------------------
# Process-wide segment registry (the crash-safety net)
# ----------------------------------------------------------------------
_CREATED: dict[str, shared_memory.SharedMemory] = {}
_ATEXIT_REGISTERED = False


def active_segments() -> tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked.

    The lifecycle invariant the tests pin: after every driver run —
    clean, cancelled, or fault-recovered — this is empty again.
    """
    return tuple(sorted(_CREATED))


def _release(name: str) -> None:
    shm = _CREATED.pop(name, None)
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:
        # Live numpy views still map the segment (e.g. the driver's own
        # inline attachment).  Unlinking below removes the /dev/shm name
        # anyway; the memory is freed once the last map drops.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def _cleanup_all() -> None:
    for name in list(_CREATED):
        _release(name)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    # Python < 3.13 registers *attached* segments with the resource
    # tracker too (bpo-39959), so a worker's exit would unlink memory
    # the driver still owns.  Drop the attach-side record.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class ShmManager:
    """Owns the segments one driver run publishes.

    ``create`` allocates a uniquely named segment and records it in the
    process registry; ``cleanup`` (idempotent, also the context-manager
    exit) closes and unlinks everything this manager created.  Whatever
    a crashed run leaves behind is still swept by the ``atexit`` hook,
    because the registry — not the manager instance — is the source of
    truth.
    """

    __slots__ = ("_names",)

    def __init__(self) -> None:
        self._names: list[str] = []

    @property
    def segments(self) -> tuple[str, ...]:
        """Names of the segments this manager currently owns."""
        return tuple(self._names)

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        global _ATEXIT_REGISTERED
        if nbytes <= 0:
            raise ShmError(f"segment size must be positive, got {nbytes}")
        name = f"{SHM_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        if not _ATEXIT_REGISTERED:
            atexit.register(_cleanup_all)
            _ATEXIT_REGISTERED = True
        _CREATED[shm.name] = shm
        self._names.append(shm.name)
        return shm

    def cleanup(self) -> None:
        for name in self._names:
            _release(name)
        self._names.clear()

    def __enter__(self) -> "ShmManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()


# ----------------------------------------------------------------------
# Publish / attach
# ----------------------------------------------------------------------
def publish_dataset(dataset: Dataset3D, manager: ShmManager) -> ShmDatasetRef:
    """Copy the dataset's packed word grid into a shared segment.

    On a words-native kernel the already-built ones-grid is reused;
    otherwise the words pack directly from the tensor.  Either way the
    segment holds the canonical little-endian layout, so any kernel can
    attach to it.  Raises :class:`ShmError` for empty datasets (a
    zero-byte segment is invalid)."""
    if dataset.kernel.words_native:
        words = np.ascontiguousarray(dataset.ones_grid(), dtype=_WORD_DTYPE)
    else:
        words = words_from_tensor(dataset.data)
    if words.nbytes == 0:
        raise ShmError(
            f"cannot publish an empty dataset {dataset.shape} through "
            "shared memory"
        )
    shm = manager.create(words.nbytes)
    view = np.ndarray(words.shape, dtype=_WORD_DTYPE, buffer=shm.buf)
    view[:] = words
    del view
    return ShmDatasetRef(
        segment=shm.name,
        shape=dataset.shape,
        nbytes=words.nbytes,
        fingerprint=hashlib.sha256(np.ascontiguousarray(words)).hexdigest(),
        kernel=dataset.kernel.name,
    )


@dataclass
class ShmAttachment:
    """A worker-side view of a published dataset.

    ``zero_copy`` tells whether :attr:`dataset` reads the segment in
    place (words-native kernel) or owns a private tensor copy.  In the
    zero-copy case the attachment keeps the segment handle open for the
    dataset's lifetime; :meth:`close` releases it (tolerating live
    views, which on Linux merely defer the actual unmap)."""

    dataset: Dataset3D
    ref: ShmDatasetRef
    zero_copy: bool
    _shm: shared_memory.SharedMemory | None = field(default=None, repr=False)

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:
                pass


def attach_dataset(
    ref: ShmDatasetRef,
    *,
    kernel: "str | Kernel | None" = None,
    verify: bool = True,
) -> ShmAttachment:
    """Reconstruct a dataset from a :class:`ShmDatasetRef`.

    A segment this process itself published (or inherited through
    ``fork``) short-circuits to the already-open mapping.  A fresh
    attach opens the segment by name, deregisters from the resource
    tracker and — with ``verify`` (the default) — checks the sha256
    fingerprint before trusting a single bit.  ``kernel`` overrides the
    ref's recorded kernel; words-native kernels attach with zero
    copies, others fall back to a private tensor copy and release the
    segment immediately."""
    l, n, m = ref.shape
    need = l * n * words_per_row(m) * 8
    if ref.nbytes != need:
        raise ShmError(
            f"ref declares {ref.nbytes} bytes but shape {ref.shape} "
            f"packs to {need}"
        )
    owned = ref.segment in _CREATED
    if owned:
        shm = _CREATED[ref.segment]
    else:
        try:
            shm = shared_memory.SharedMemory(name=ref.segment)
        except FileNotFoundError as exc:
            raise ShmError(
                f"shared-memory segment {ref.segment!r} does not exist "
                "(already unlinked, or published by another machine?)"
            ) from exc
        _untrack(shm)
    try:
        if shm.size < ref.nbytes:
            raise ShmError(
                f"segment {ref.segment!r} holds {shm.size} bytes, "
                f"ref expects {ref.nbytes}"
            )
        if verify and not owned:
            digest = hashlib.sha256(shm.buf[: ref.nbytes]).hexdigest()
            if digest != ref.fingerprint:
                raise ShmError(
                    f"segment {ref.segment!r} fingerprint mismatch: "
                    f"expected {ref.fingerprint[:12]}…, found {digest[:12]}…"
                )
        words = np.ndarray(ref.words_shape, dtype=_WORD_DTYPE, buffer=shm.buf)
        resolved = resolve_kernel(kernel if kernel is not None else ref.kernel)
        dataset = Dataset3D.from_packed_grid(words, ref.shape, kernel=resolved)
        if resolved.words_native:
            return ShmAttachment(dataset, ref, True, None if owned else shm)
        # Copy fallback: the dataset owns its tensor now — drop our view
        # and segment handle straight away.
        del words
        if not owned:
            shm.close()
        return ShmAttachment(dataset, ref, False, None)
    except Exception:
        if not owned:
            try:
                shm.close()
            except BufferError:
                pass
        raise
