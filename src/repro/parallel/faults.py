"""Deterministic fault injection for the supervised parallel drivers.

A :class:`FaultPlan` maps supervisor chunk indices to faults; the plan
travels to every worker process through the pool initializer, and the
worker fires its chunk's fault *before* mining starts, so an injected
failure never leaks partial tallies into the merged metrics.  Four
fault kinds cover the real-world failure modes of a process pool:

* ``"crash"``     — the worker dies abruptly (``os._exit``), poisoning
  the pool exactly like an OOM kill;
* ``"hang"``      — the worker sleeps past any reasonable per-task
  timeout, modelling a livelock or a lost worker;
* ``"slow"``      — the worker sleeps for a bounded time and then
  completes normally (a straggler);
* ``"exception"`` — the worker raises :class:`FaultInjected`, modelling
  an in-task software error.

Faults only fire inside *worker* processes (the plan records the
driver's PID at construction); the inline degraded path therefore
always completes, which is exactly the recovery guarantee the test
suite asserts.  By default a fault fires on attempt 0 only, so a retry
of the same chunk succeeds; pass ``attempts=None`` to make a fault
permanent (used to exercise budget exhaustion and pool-irrecoverable
degradation).

:meth:`FaultPlan.random` draws a seeded plan for randomized suites and
the recovery-overhead benchmark.

This module injects *worker-task* faults inside the parallel drivers;
its storage/service-layer sibling is :mod:`repro.chaos`, whose
:class:`~repro.chaos.plan.ChaosPlan` + :class:`~repro.chaos.io.ChaosShim`
inject IO faults (ENOSPC, torn writes, bit flips, ...) under every
on-disk store and the mining daemon.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

__all__ = ["FAULT_KINDS", "Fault", "FaultInjected", "FaultPlan"]

#: Fault kinds a plan may inject, in canonical order.
FAULT_KINDS = ("crash", "hang", "slow", "exception")

#: Exit status used by ``"crash"`` faults (distinctive in worker logs).
CRASH_EXIT_CODE = 87


class FaultInjected(RuntimeError):
    """The error raised in a worker by an ``"exception"`` fault."""

    def __init__(self, chunk: int, attempt: int) -> None:
        super().__init__(f"injected fault in chunk {chunk} (attempt {attempt})")
        self.chunk = chunk
        self.attempt = attempt

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the message) into
        # ``__init__``, which takes (chunk, attempt) — without this the
        # exception fails to unpickle in the driver and a plain task
        # error masquerades as a broken pool.
        return (type(self), (self.chunk, self.attempt))


@dataclass(frozen=True)
class Fault:
    """One injected fault: what happens and on which attempts.

    ``attempts`` is the set of 0-based attempt numbers the fault fires
    on (default: first attempt only); ``None`` means *every* attempt —
    a permanent fault that forces the supervisor to exhaust its budget
    or degrade to inline execution.  ``seconds`` parameterizes the
    sleep of ``"hang"`` / ``"slow"`` faults.
    """

    kind: str
    seconds: float = 30.0
    attempts: frozenset[int] | None = frozenset({0})

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.attempts is not None:
            object.__setattr__(self, "attempts", frozenset(self.attempts))

    def applies_to(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A picklable map of chunk index -> :class:`Fault`.

    The plan is created in the driver and shipped to workers via the
    pool initializer; :meth:`fire` is a no-op in the driver process
    itself, so inline (degraded) execution never faults.
    """

    faults: dict[int, Fault] = field(default_factory=dict)
    driver_pid: int = field(default_factory=os.getpid)

    def __post_init__(self) -> None:
        for index, fault in self.faults.items():
            if not isinstance(fault, Fault):
                raise TypeError(
                    f"chunk {index}: expected a Fault, got {type(fault).__name__}"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, chunk: int, kind: str, **fault_kwargs) -> "FaultPlan":
        """A plan with one fault at ``chunk``."""
        return cls(faults={int(chunk): Fault(kind, **fault_kwargs)})

    @classmethod
    def random(
        cls,
        n_chunks: int,
        n_faults: int,
        *,
        kinds: tuple[str, ...] = ("crash", "exception"),
        seconds: float = 30.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """A seeded plan injecting ``n_faults`` faults over ``n_chunks``.

        Chunk indices are drawn without replacement; kinds cycle through
        a seeded shuffle of ``kinds`` so every requested kind appears
        when ``n_faults >= len(kinds)``.
        """
        if n_chunks < 0:
            raise ValueError(f"n_chunks must be >= 0, got {n_chunks}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
                )
        n_faults = min(n_faults, n_chunks)
        rng = random.Random(seed)
        indices = rng.sample(range(n_chunks), n_faults)
        return cls(
            faults={
                index: Fault(kinds[i % len(kinds)], seconds=seconds)
                for i, index in enumerate(indices)
            }
        )

    # ------------------------------------------------------------------
    # Worker-side hook
    # ------------------------------------------------------------------
    def fire(self, chunk: int, attempt: int) -> None:
        """Inject the chunk's fault, if any — worker processes only."""
        if os.getpid() == self.driver_pid:
            return
        fault = self.faults.get(chunk)
        if fault is None or not fault.applies_to(attempt):
            return
        if fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        elif fault.kind in ("hang", "slow"):
            time.sleep(fault.seconds)
            if fault.kind == "hang":
                # A "hang" that outlives its sleep still never returns a
                # result; exiting keeps a killed-pool test from leaking
                # a live worker that later writes to a closed pipe.
                os._exit(CRASH_EXIT_CODE)
        else:
            raise FaultInjected(chunk, attempt)

    def __len__(self) -> int:
        return len(self.faults)
