"""Chunk-level checkpoint/resume journal for supervised parallel runs.

The journal is an append-only JSONL file.  Line 1 is a header binding
the journal to one exact run configuration (algorithm, dataset shape,
thresholds, kernel-independent task fingerprint and chunk count); every
subsequent line records one completed chunk — its raw cube triples (in
the driver's working axis order, via
:func:`repro.io.raw_cubes_to_payload`) and its per-chunk
:class:`~repro.obs.metrics.MiningMetrics` tallies.

Because chunks are independent and results are reassembled by chunk id,
replaying the journal and mining only the missing chunks reproduces the
uninterrupted run bit-for-bit: same cube list (set *and* order), same
merged metric totals.  A process killed mid-append leaves at most one
truncated trailing line, which :func:`load_journal` tolerates (that
chunk is simply re-mined); a journal whose fingerprint does not match
the resuming run raises :class:`CheckpointMismatchError` instead of
silently splicing results from a different dataset or threshold set.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import IO

from ..io import raw_cubes_from_payload, raw_cubes_to_payload

__all__ = [
    "CheckpointMismatchError",
    "CheckpointJournal",
    "run_fingerprint",
    "load_journal",
    "journal_status",
]

#: Version tag of the journal line schema.
JOURNAL_VERSION = 1


class CheckpointMismatchError(ValueError):
    """A journal's header does not match the run trying to resume it."""


def run_fingerprint(
    algorithm: str,
    dataset_shape: tuple[int, int, int],
    thresholds: tuple[int, ...],
    chunks: list[list],
) -> str:
    """A stable digest binding a journal to one run configuration.

    Covers the algorithm name, dataset shape, all four thresholds and
    the exact chunked task decomposition (task generation is
    deterministic, so equal configurations yield equal chunk lists).
    The kernel backend is deliberately excluded: backends never change
    the mined cubes, so a run may resume under a different kernel.
    """
    digest = hashlib.sha256()
    digest.update(algorithm.encode())
    digest.update(repr(tuple(dataset_shape)).encode())
    digest.update(repr(tuple(thresholds)).encode())
    digest.update(repr(chunks).encode())
    return digest.hexdigest()


def load_journal(
    path: str | Path,
) -> tuple[dict | None, dict[int, tuple[list[tuple[int, int, int]], dict]]]:
    """Read a journal, tolerating a truncated trailing line.

    Returns ``(header, completed)`` where ``completed`` maps chunk id to
    ``(raw_triples, metric_tallies)``.  A missing file yields
    ``(None, {})``.  Reading stops at the first undecodable line — a
    crash mid-append corrupts at most the final line, and any chunk
    after a corruption point is treated as not-yet-mined.
    """
    path = Path(path)
    if not path.exists():
        return None, {}
    header: dict | None = None
    completed: dict[int, tuple[list[tuple[int, int, int]], dict]] = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if not isinstance(record, dict):
                break
            if record.get("kind") == "header":
                header = record
            elif record.get("kind") == "chunk":
                try:
                    chunk_id = int(record["chunk"])
                    raw = raw_cubes_from_payload(record["cubes"])
                    tallies = dict(record["metrics"])
                except (KeyError, TypeError, ValueError):
                    break
                completed[chunk_id] = (raw, tallies)
            else:
                break
    return header, completed


def journal_status(path: str | Path) -> dict:
    """Cheap progress summary of a checkpoint journal.

    Returns ``{"exists": bool, "n_chunks": int | None, "completed":
    int, "algorithm": str | None}`` — how far a (possibly interrupted)
    run got, without touching the cube payloads.  The service daemon
    reports this as the resumable progress of a killed job.
    """
    header, completed = load_journal(path)
    return {
        "exists": header is not None,
        "n_chunks": header.get("n_chunks") if header else None,
        "completed": len(completed),
        "algorithm": header.get("algorithm") if header else None,
    }


class CheckpointJournal:
    """Append-only writer (plus resume loader) for one supervised run."""

    def __init__(
        self,
        path: str | Path,
        handle: IO[str],
        completed: dict[int, tuple[list[tuple[int, int, int]], dict]],
        *,
        io=None,
    ) -> None:
        from ..chaos.io import IOShim

        self.path = Path(path)
        self._handle = handle
        self.io = io if io is not None else IOShim()
        #: Chunk results replayed from a previous run of this journal.
        self.completed = completed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        algorithm: str,
        fingerprint: str,
        n_chunks: int,
        resume: bool = False,
        io=None,
    ) -> "CheckpointJournal":
        """Open a journal for writing, optionally resuming an earlier one.

        With ``resume=True`` an existing journal is validated against
        ``fingerprint`` (mismatch raises
        :class:`CheckpointMismatchError`), its completed chunks are
        loaded, and new chunk records append after them.  Otherwise any
        existing file is truncated and a fresh header written.  ``io``
        is the :class:`~repro.chaos.io.IOShim` chunk appends route
        through (the hardened default when unset).
        """
        path = Path(path)
        completed: dict[int, tuple[list[tuple[int, int, int]], dict]] = {}
        if resume and path.exists():
            header, completed = load_journal(path)
            if header is not None:
                if header.get("fingerprint") != fingerprint:
                    raise CheckpointMismatchError(
                        f"checkpoint {path} was written by a different run "
                        f"configuration (algorithm {header.get('algorithm')!r}, "
                        f"{header.get('n_chunks')} chunk(s)); refusing to "
                        "splice its results"
                    )
                # Drop chunk ids beyond this run's decomposition (a
                # truncated header would have failed the fingerprint).
                completed = {
                    cid: entry
                    for cid, entry in completed.items()
                    if 0 <= cid < n_chunks
                }
                handle = open(path, "a")
                return cls(path, handle, completed, io=io)
            # Unreadable/empty journal: fall through to a fresh start.
            completed = {}
        handle = open(path, "w")
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "algorithm": algorithm,
            "fingerprint": fingerprint,
            "n_chunks": n_chunks,
        }
        handle.write(json.dumps(header) + "\n")
        handle.flush()
        return cls(path, handle, completed, io=io)

    def record(
        self,
        chunk_id: int,
        raw: list[tuple[int, int, int]],
        tallies: dict,
    ) -> None:
        """Append one completed chunk and flush it to disk."""
        line = json.dumps(
            {
                "kind": "chunk",
                "chunk": int(chunk_id),
                "cubes": raw_cubes_to_payload(raw),
                "metrics": {k: int(v) for k, v in tallies.items()},
            }
        )
        self.io.append_line("checkpoint", self._handle, line)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
